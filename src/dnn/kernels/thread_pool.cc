#include "dnn/kernels/thread_pool.h"

#include <algorithm>

namespace cannikin::dnn::kernels {

ThreadPool::ThreadPool(int threads) : size_(std::max(threads, 1)) {
  if (size_ > 1) {
    workers_.reserve(static_cast<std::size_t>(size_) - 1);
    for (std::size_t i = 0; i + 1 < static_cast<std::size_t>(size_); ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t min_per_chunk = std::max<std::size_t>(grain, 1);
  std::size_t chunks = std::min<std::size_t>(static_cast<std::size_t>(size_),
                                             n / min_per_chunk);
  if (workers_.empty() || chunks <= 1) {
    body(0, n);
    return;
  }
  // Round the chunk size up, then recompute the chunk count so every
  // chunk is non-empty (e.g. n=5, 4 threads -> 3 chunks of <= 2).
  const std::size_t chunk = (n + chunks - 1) / chunks;
  chunks = (n + chunk - 1) / chunk;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    job_n_ = n;
    chunk_size_ = chunk;
    num_chunks_ = chunks;
    remaining_ = chunks - 1;  // workers run chunks 1..chunks-1
    ++generation_;
  }
  work_cv_.notify_all();
  body(0, std::min(chunk, n));  // the caller takes chunk 0
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return remaining_ == 0; });
  body_ = nullptr;
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t begin = 0, end = 0;
    bool has_chunk = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      const std::size_t chunk_index = worker_index + 1;
      if (chunk_index < num_chunks_) {
        body = body_;
        begin = chunk_index * chunk_size_;
        end = std::min(job_n_, begin + chunk_size_);
        has_chunk = true;
      }
    }
    if (has_chunk) {
      (*body)(begin, end);
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace cannikin::dnn::kernels
