// Optimized kernel backend: cache-blocked, vectorization-friendly
// rewrites of the reference loops.
//
// Bitwise-parity discipline: every output element accumulates its
// contributions in exactly the naive order (k ascending, starting from
// 0.0 for overwrite ops, onto the existing value for *_acc ops; bias
// added after the full sum; activation last). Blocking only regroups
// *which element* is worked on when -- never the order of additions
// within one element -- and the v == 0.0 skip structure is replicated
// where the reference has it (matmul_nn / matmul_tn_acc yes, linear
// no). The k-innermost axpy loops carry no cross-iteration dependence
// on the j axis, so the compiler vectorizes them without reassociating
// any element's sum. This TU compiles with -ffp-contract=off plus
// -O3/-march=native (see src/dnn/CMakeLists.txt): contraction off
// keeps rounding identical to the reference, SIMD supplies the speed.
#include <algorithm>
#include <cmath>
#include <memory_resource>

#include "dnn/kernels/backends.h"
#include "dnn/kernels/thread_pool.h"

namespace cannikin::dnn::kernels {
namespace {

constexpr std::size_t kRowBlock = 8;   // output rows per L1-resident tile
constexpr std::size_t kKBlock = 16;    // k depth per tile
constexpr std::size_t kRowGrain = 4;   // min rows per pool chunk

double apply(Activation act, double x) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kReLU:
      return x > 0.0 ? x : 0.0;
    case Activation::kTanh:
      return std::tanh(x);
  }
  return x;
}

// Scratch buffer carved from the caller's memory resource; deallocate
// is a no-op on the arena and a real free on the heap fallback.
class ScratchBuffer {
 public:
  ScratchBuffer(std::pmr::memory_resource* mr, std::size_t count)
      : mr_(mr), count_(count) {
    data_ = static_cast<double*>(
        mr_->allocate(count_ * sizeof(double), alignof(double)));
  }
  ~ScratchBuffer() { mr_->deallocate(data_, count_ * sizeof(double), alignof(double)); }
  ScratchBuffer(const ScratchBuffer&) = delete;
  ScratchBuffer& operator=(const ScratchBuffer&) = delete;
  double* data() { return data_; }

 private:
  std::pmr::memory_resource* mr_;
  std::size_t count_;
  double* data_ = nullptr;
};

class OptimizedKernel final : public KernelBackend {
 public:
  const char* name() const override { return "optimized"; }

  void matmul_nn(const double* a, const double* b, double* c, std::size_t m,
                 std::size_t k, std::size_t n,
                 ThreadPool* pool) const override {
    for_range(pool, m, kRowGrain, [&](std::size_t begin, std::size_t end) {
      for (std::size_t r0 = begin; r0 < end; r0 += kRowBlock) {
        const std::size_t r1 = std::min(end, r0 + kRowBlock);
        std::fill(c + r0 * n, c + r1 * n, 0.0);
        for (std::size_t kb = 0; kb < k; kb += kKBlock) {
          const std::size_t ke = std::min(k, kb + kKBlock);
          for (std::size_t r = r0; r < r1; ++r) {
            const double* arow = a + r * k;
            double* crow = c + r * n;
            for (std::size_t kk = kb; kk < ke; ++kk) {
              const double v = arow[kk];
              if (v == 0.0) continue;
              const double* brow = b + kk * n;
              for (std::size_t col = 0; col < n; ++col) {
                crow[col] += v * brow[col];
              }
            }
          }
        }
      }
    });
  }

  void linear(const double* a, const double* w, const double* bias, double* c,
              std::size_t m, std::size_t k, std::size_t n, Activation act,
              ThreadPool* pool,
              std::pmr::memory_resource* scratch) const override {
    if (m < kRowGrain) {
      linear_small_m(a, w, bias, c, m, k, n, act);
      return;
    }
    // Pack W (n,k) into W^T (k,n) so the inner loop is a contiguous
    // axpy over the output row -- the same element-wise k-ascending sum
    // as the reference dot, just vectorizable.
    ScratchBuffer packed(scratch != nullptr
                             ? scratch
                             : std::pmr::get_default_resource(),
                         k * n);
    double* wt = packed.data();
    for (std::size_t col = 0; col < n; ++col) {
      const double* wrow = w + col * k;
      for (std::size_t kk = 0; kk < k; ++kk) wt[kk * n + col] = wrow[kk];
    }
    for_range(pool, m, kRowGrain, [&](std::size_t begin, std::size_t end) {
      for (std::size_t r0 = begin; r0 < end; r0 += kRowBlock) {
        const std::size_t r1 = std::min(end, r0 + kRowBlock);
        std::fill(c + r0 * n, c + r1 * n, 0.0);
        for (std::size_t kb = 0; kb < k; kb += kKBlock) {
          const std::size_t ke = std::min(k, kb + kKBlock);
          for (std::size_t r = r0; r < r1; ++r) {
            const double* arow = a + r * k;
            double* crow = c + r * n;
            // Four k steps per pass keep each C element in a register
            // across four additions, quartering the load/store traffic
            // on the output row. The additions stay k-ascending per
            // element, so rounding matches the reference exactly.
            // No zero-skip anywhere: the reference linear has none.
            std::size_t kk = kb;
            for (; kk + 4 <= ke; kk += 4) {
              const double v0 = arow[kk + 0];
              const double v1 = arow[kk + 1];
              const double v2 = arow[kk + 2];
              const double v3 = arow[kk + 3];
              const double* w0 = wt + kk * n;
              const double* w1 = w0 + n;
              const double* w2 = w1 + n;
              const double* w3 = w2 + n;
              for (std::size_t col = 0; col < n; ++col) {
                double acc = crow[col];
                acc += v0 * w0[col];
                acc += v1 * w1[col];
                acc += v2 * w2[col];
                acc += v3 * w3[col];
                crow[col] = acc;
              }
            }
            for (; kk < ke; ++kk) {
              const double v = arow[kk];
              const double* wrow = wt + kk * n;
              for (std::size_t col = 0; col < n; ++col) {
                crow[col] += v * wrow[col];
              }
            }
          }
        }
        for (std::size_t r = r0; r < r1; ++r) {
          double* crow = c + r * n;
          if (bias != nullptr) {
            for (std::size_t col = 0; col < n; ++col) crow[col] += bias[col];
          }
          if (act != Activation::kNone) {
            for (std::size_t col = 0; col < n; ++col) {
              crow[col] = apply(act, crow[col]);
            }
          }
        }
      }
    });
  }

  void matmul_tn_acc(const double* a, const double* b, double* c,
                     std::size_t m, std::size_t k, std::size_t n,
                     ThreadPool* pool) const override {
    for_range(pool, m, kRowGrain, [&](std::size_t begin, std::size_t end) {
      for (std::size_t r0 = begin; r0 < end; r0 += kRowBlock) {
        const std::size_t r1 = std::min(end, r0 + kRowBlock);
        for (std::size_t kb = 0; kb < k; kb += kKBlock) {
          const std::size_t ke = std::min(k, kb + kKBlock);
          for (std::size_t r = r0; r < r1; ++r) {
            double* crow = c + r * n;
            for (std::size_t kk = kb; kk < ke; ++kk) {
              const double v = a[kk * m + r];
              if (v == 0.0) continue;
              const double* brow = b + kk * n;
              for (std::size_t col = 0; col < n; ++col) {
                crow[col] += v * brow[col];
              }
            }
          }
        }
      }
    });
  }

  void col_sum_acc(const double* a, double* out, std::size_t m, std::size_t n,
                   ThreadPool* pool) const override {
    // Column-parallel so chunks own disjoint slices of `out`; each
    // column still accumulates rows in ascending order.
    for_range(pool, n, 64, [&](std::size_t begin, std::size_t end) {
      for (std::size_t r = 0; r < m; ++r) {
        const double* arow = a + r * n;
        for (std::size_t col = begin; col < end; ++col) out[col] += arow[col];
      }
    });
  }

  void activation_forward(Activation act, const double* x, double* y,
                          std::size_t count, ThreadPool* pool) const override {
    for_range(pool, count, 1024, [&](std::size_t begin, std::size_t end) {
      switch (act) {
        case Activation::kNone:
          for (std::size_t i = begin; i < end; ++i) y[i] = x[i];
          break;
        case Activation::kReLU:
          for (std::size_t i = begin; i < end; ++i) {
            y[i] = x[i] > 0.0 ? x[i] : 0.0;
          }
          break;
        case Activation::kTanh:
          for (std::size_t i = begin; i < end; ++i) y[i] = std::tanh(x[i]);
          break;
      }
    });
  }

  void activation_backward(Activation act, const double* y, const double* dy,
                           double* dx, std::size_t count,
                           ThreadPool* pool) const override {
    for_range(pool, count, 1024, [&](std::size_t begin, std::size_t end) {
      switch (act) {
        case Activation::kNone:
          for (std::size_t i = begin; i < end; ++i) dx[i] = dy[i];
          break;
        case Activation::kReLU:
          for (std::size_t i = begin; i < end; ++i) {
            dx[i] = y[i] <= 0.0 ? 0.0 : dy[i];
          }
          break;
        case Activation::kTanh:
          for (std::size_t i = begin; i < end; ++i) {
            dx[i] = dy[i] * (1.0 - y[i] * y[i]);
          }
          break;
      }
    });
  }

  void sgd_step(double* params, const double* grads, double* velocity,
                std::size_t count, double lr, double momentum,
                double weight_decay, ThreadPool* pool) const override {
    for_range(pool, count, 1024, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const double g = grads[i] + weight_decay * params[i];
        velocity[i] = momentum * velocity[i] + g;
        params[i] -= lr * velocity[i];
      }
    });
  }

  void adam_step(double* params, const double* grads, double* m, double* v,
                 std::size_t count, double lr, double beta1, double beta2,
                 double bc1, double bc2, double eps, double weight_decay,
                 bool decoupled, ThreadPool* pool) const override {
    for_range(pool, count, 1024, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        double g = grads[i];
        if (!decoupled) g += weight_decay * params[i];
        m[i] = beta1 * m[i] + (1.0 - beta1) * g;
        v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
        const double m_hat = m[i] / bc1;
        const double v_hat = v[i] / bc2;
        params[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
        if (decoupled) params[i] -= lr * weight_decay * params[i];
      }
    });
  }

 private:
  // Tiny batches: packing costs more than it saves. Four independent
  // column dots give the compiler ILP; each dot is a single
  // k-ascending chain, identical to the reference element sum.
  static void linear_small_m(const double* a, const double* w,
                             const double* bias, double* c, std::size_t m,
                             std::size_t k, std::size_t n, Activation act) {
    for (std::size_t r = 0; r < m; ++r) {
      const double* arow = a + r * k;
      double* crow = c + r * n;
      std::size_t col = 0;
      for (; col + 4 <= n; col += 4) {
        const double* w0 = w + (col + 0) * k;
        const double* w1 = w + (col + 1) * k;
        const double* w2 = w + (col + 2) * k;
        const double* w3 = w + (col + 3) * k;
        double t0 = 0.0, t1 = 0.0, t2 = 0.0, t3 = 0.0;
        for (std::size_t kk = 0; kk < k; ++kk) {
          const double v = arow[kk];
          t0 += v * w0[kk];
          t1 += v * w1[kk];
          t2 += v * w2[kk];
          t3 += v * w3[kk];
        }
        if (bias != nullptr) {
          t0 += bias[col + 0];
          t1 += bias[col + 1];
          t2 += bias[col + 2];
          t3 += bias[col + 3];
        }
        crow[col + 0] = apply(act, t0);
        crow[col + 1] = apply(act, t1);
        crow[col + 2] = apply(act, t2);
        crow[col + 3] = apply(act, t3);
      }
      for (; col < n; ++col) {
        const double* wrow = w + col * k;
        double total = 0.0;
        for (std::size_t kk = 0; kk < k; ++kk) total += arow[kk] * wrow[kk];
        if (bias != nullptr) total += bias[col];
        crow[col] = apply(act, total);
      }
    }
  }
};

}  // namespace

namespace detail {
const KernelBackend& optimized_backend() {
  static const OptimizedKernel backend;
  return backend;
}
}  // namespace detail

}  // namespace cannikin::dnn::kernels
