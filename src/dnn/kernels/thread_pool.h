// Intra-rank thread pool for batch-parallel forward/backward.
//
// One pool per rank thread, owned by the trainer worker. parallel_for
// statically partitions [0, n) into at most size() contiguous chunks
// with disjoint outputs, so a kernel that preserves its per-element
// accumulation order stays bitwise identical across thread counts --
// the property the kernel conformance suite asserts.
//
// Not reentrant and not shareable across threads: exactly one thread
// (the owner) may call parallel_for at a time.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cannikin::dnn::kernels {

class ThreadPool {
 public:
  /// threads <= 1 spawns no workers; parallel_for then runs inline.
  explicit ThreadPool(int threads = 1);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_; }

  /// Runs body(begin, end) over a static contiguous partition of
  /// [0, n). `grain` is the minimum items per chunk: when n < 2*grain
  /// (or the pool is serial) the body runs inline on the caller.
  /// The caller always executes chunk 0 itself.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop(std::size_t worker_index);

  int size_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  // Current job; written under mutex_ before the generation bump, read
  // by workers after they observe the new generation.
  const std::function<void(std::size_t, std::size_t)>* body_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t chunk_size_ = 0;
  std::size_t num_chunks_ = 0;
  std::size_t remaining_ = 0;
};

/// Runs `body(begin, end)` over [0, n), using the pool when present.
/// The template avoids materializing a std::function (and its heap
/// allocation) on the serial path, which is what the zero-alloc
/// steady-state contract of the arena-backed trainers relies on.
template <typename Body>
void for_range(ThreadPool* pool, std::size_t n, std::size_t grain,
               Body&& body) {
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(n, grain, body);
  } else {
    body(std::size_t{0}, n);
  }
}

}  // namespace cannikin::dnn::kernels
