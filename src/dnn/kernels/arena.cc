#include "dnn/kernels/arena.h"

#include <algorithm>

namespace cannikin::dnn::kernels {

Arena::Arena(std::size_t initial_bytes)
    : buffer_(std::max<std::size_t>(initial_bytes, 64)) {
  mono_.emplace(buffer_.data(), buffer_.size(), &upstream_);
}

void Arena::reset() {
  peak_bytes_ = std::max(peak_bytes_, cycle_bytes_);
  mono_.reset();  // releases any overflow chunks back upstream
  if (upstream_.count != grown_at_count_) {
    // The last cycle spilled to the heap: grow the owned buffer with
    // headroom so the steady state stops touching the heap entirely.
    std::size_t want = buffer_.size();
    while (want < cycle_bytes_ + cycle_bytes_ / 2) want *= 2;
    buffer_.assign(want, std::byte{0});
    grown_at_count_ = upstream_.count;
  }
  mono_.emplace(buffer_.data(), buffer_.size(), &upstream_);
  cycle_bytes_ = 0;
}

void* Arena::do_allocate(std::size_t bytes, std::size_t alignment) {
  cycle_bytes_ += bytes;
  return mono_->allocate(bytes, alignment);
}

}  // namespace cannikin::dnn::kernels
