// Compute-kernel layer for the DNN training substrate.
//
// One KernelBackend interface, two implementations:
//   * kNaive     -- the original scalar loops, retained verbatim as the
//                   reference semantics (and the reference the parity
//                   fuzzer checks against).
//   * kOptimized -- cache-blocked, vectorization-friendly loops with
//                   fused linear+bias+activation epilogues and optional
//                   intra-rank threading.
//
// Determinism contract (see DESIGN.md "Compute kernels"): on the
// serial path the optimized kernels preserve the naive per-element
// accumulation order exactly, so results are BITWISE identical to the
// reference -- flipping the backend never changes a training
// trajectory. The threaded path partitions rows statically with
// disjoint outputs and the same per-element order, so it is bitwise
// stable across thread counts too; the documented contract still only
// promises <= 2 ulp there, leaving room for future kernels that trade
// exact order for speed.
#pragma once

#include <cstddef>
#include <memory_resource>

namespace cannikin::dnn::kernels {

class ThreadPool;

/// Activation fused into Linear's epilogue (and used standalone by the
/// elementwise layers).
enum class Activation { kNone, kReLU, kTanh };

enum class KernelKind { kNaive, kOptimized };

class KernelBackend {
 public:
  virtual ~KernelBackend() = default;
  virtual const char* name() const = 0;

  /// C(m,n) = A(m,k) * B(k,n); C is overwritten.
  virtual void matmul_nn(const double* a, const double* b, double* c,
                         std::size_t m, std::size_t k, std::size_t n,
                         ThreadPool* pool) const = 0;

  /// C(m,n) = act(A(m,k) * W(n,k)^T [+ bias]); C is overwritten.
  /// bias (length n) may be null; act == kNone with null bias is a
  /// plain matmul_transposed. `scratch` backs packing buffers and must
  /// not be null (pass std::pmr::get_default_resource() when no arena
  /// is threaded through).
  virtual void linear(const double* a, const double* w, const double* bias,
                      double* c, std::size_t m, std::size_t k, std::size_t n,
                      Activation act, ThreadPool* pool,
                      std::pmr::memory_resource* scratch) const = 0;

  /// C(m,n) += A(k,m)^T * B(k,n)  (accumulating transposed_matmul; the
  /// Linear weight-gradient update).
  virtual void matmul_tn_acc(const double* a, const double* b, double* c,
                             std::size_t m, std::size_t k, std::size_t n,
                             ThreadPool* pool) const = 0;

  /// out[j] += sum_r a(r,j) over an (m,n) matrix (bias gradient).
  virtual void col_sum_acc(const double* a, double* out, std::size_t m,
                           std::size_t n, ThreadPool* pool) const = 0;

  /// y = act(x) elementwise over count values (kNone copies).
  virtual void activation_forward(Activation act, const double* x, double* y,
                                  std::size_t count,
                                  ThreadPool* pool) const = 0;

  /// dx = dy * act'(y) where y is the cached *post*-activation output
  /// (kReLU: y <= 0 gates; kTanh: 1 - y^2; kNone copies dy).
  virtual void activation_backward(Activation act, const double* y,
                                   const double* dy, double* dx,
                                   std::size_t count,
                                   ThreadPool* pool) const = 0;

  /// SGD with momentum and (coupled) weight decay, in place.
  virtual void sgd_step(double* params, const double* grads, double* velocity,
                        std::size_t count, double lr, double momentum,
                        double weight_decay, ThreadPool* pool) const = 0;

  /// Adam/AdamW in place; bc1/bc2 are the bias-correction denominators
  /// 1 - beta^t, `decoupled` selects AdamW-style weight decay.
  virtual void adam_step(double* params, const double* grads, double* m,
                         double* v, std::size_t count, double lr, double beta1,
                         double beta2, double bc1, double bc2, double eps,
                         double weight_decay, bool decoupled,
                         ThreadPool* pool) const = 0;
};

/// Process-lifetime singleton for each kind.
const KernelBackend& kernel(KernelKind kind);
const char* kernel_kind_name(KernelKind kind);

/// Execution context threaded through Tensor/layers/loss/optimizer: the
/// backend, the intra-rank pool (null = serial) and the workspace
/// memory resource (null = heap). One per rank thread; borrowed, never
/// owned by the layers it is handed to.
struct Context {
  const KernelBackend* backend = nullptr;  ///< null = naive reference
  ThreadPool* pool = nullptr;
  std::pmr::memory_resource* memory = nullptr;

  const KernelBackend& k() const {
    return backend != nullptr ? *backend : kernel(KernelKind::kNaive);
  }
  std::pmr::memory_resource* resource() const {
    return memory != nullptr ? memory : std::pmr::get_default_resource();
  }
  /// True when execution is single-threaded, i.e. the bitwise-exact
  /// deterministic tier.
  bool deterministic() const;
};

/// Naive backend, serial, heap memory -- the reference semantics every
/// layer falls back to when no context is attached.
const Context& default_context();

inline const Context& ctx_or_default(const Context* ctx) {
  return ctx != nullptr ? *ctx : default_context();
}

}  // namespace cannikin::dnn::kernels
