// Deterministic random number generation for simulations and tests.
//
// All stochastic components in this repository draw from an explicitly
// seeded `Rng` so every experiment is reproducible from its seed. The
// class wraps std::mt19937_64 with the distributions the simulator and
// training substrate actually need.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace cannikin {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal multiplicative jitter with median 1 and the given sigma of
  /// the underlying normal. Used to model measurement noise on timings.
  double lognormal_jitter(double sigma) {
    if (sigma <= 0.0) return 1.0;
    return std::exp(std::normal_distribution<double>(0.0, sigma)(engine_));
  }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    std::shuffle(values.begin(), values.end(), engine_);
  }

  /// Derives an independent child generator; useful for giving each
  /// simulated node its own stream while keeping the parent reproducible.
  Rng fork() { return Rng(engine_()); }

  /// Serializable engine state (std::mt19937_64 stream format). A
  /// restored Rng continues the exact random stream, which is what
  /// makes checkpointed training bit-identical to uninterrupted runs.
  std::string state() const {
    std::ostringstream out;
    out << engine_;
    return out.str();
  }
  void set_state(const std::string& state) {
    std::istringstream in(state);
    in >> engine_;
    if (!in) throw std::invalid_argument("Rng: malformed engine state");
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cannikin
