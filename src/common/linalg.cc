#include "common/linalg.h"

#include <cmath>
#include <cstdlib>

namespace cannikin {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows.size() == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("Matrix multiply: dimension mismatch");
  }
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = (*this)(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out(r, c) += v * rhs(k, c);
      }
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& rhs) const {
  if (cols_ != rhs.size()) {
    throw std::invalid_argument("Matrix-vector multiply: dimension mismatch");
  }
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out[r] += (*this)(r, c) * rhs[c];
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix add: dimension mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix subtract: dimension mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= scalar;
  return out;
}

namespace {

// In-place LU with partial pivoting. Returns the permutation as a row
// index map. Throws on singularity.
std::vector<std::size_t> lu_decompose(Matrix& a) {
  const std::size_t n = a.rows();
  if (a.cols() != n) {
    throw std::invalid_argument("solve: matrix must be square");
  }
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-14) {
      throw SingularMatrixError("solve: singular matrix");
    }
    if (pivot != col) {
      std::swap(perm[pivot], perm[col]);
      for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
    }
    const double inv_diag = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv_diag;
      a(r, col) = factor;
      for (std::size_t c = col + 1; c < n; ++c) {
        a(r, c) -= factor * a(col, c);
      }
    }
  }
  return perm;
}

Vector lu_solve(const Matrix& lu, const std::vector<std::size_t>& perm,
                const Vector& b) {
  const std::size_t n = lu.rows();
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm[i]];
  // Forward substitution with unit lower triangle.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu(i, j) * x[j];
  }
  // Backward substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) x[ii] -= lu(ii, j) * x[j];
    x[ii] /= lu(ii, ii);
  }
  return x;
}

}  // namespace

Vector solve(Matrix a, Vector b) {
  if (a.rows() != b.size()) {
    throw std::invalid_argument("solve: rhs size mismatch");
  }
  const auto perm = lu_decompose(a);
  return lu_solve(a, perm, b);
}

Matrix solve(Matrix a, Matrix b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("solve: rhs rows mismatch");
  }
  const auto perm = lu_decompose(a);
  Matrix x(b.rows(), b.cols());
  Vector column(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) column[r] = b(r, c);
    Vector solved = lu_solve(a, perm, column);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = solved[r];
  }
  return x;
}

Matrix inverse(const Matrix& a) {
  return solve(a, Matrix::identity(a.rows()));
}

double dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dot: size mismatch");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) total += a[i] * b[i];
  return total;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

double sum(const Vector& a) {
  double total = 0.0;
  for (double v : a) total += v;
  return total;
}

}  // namespace cannikin
