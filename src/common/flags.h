// Tiny command-line flag parser for the example binaries and the CLI.
//
// Supports --key=value and --key value forms plus bare positional
// arguments; typed getters with defaults. Unknown flags are kept and
// can be listed so tools can reject typos.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cannikin {

class Flags {
 public:
  /// Parses argv (argv[0] skipped). "--key=value" and "--key value" set
  /// flags; "--key" followed by another flag (or nothing) becomes a
  /// boolean "true"; everything else is positional.
  static Flags parse(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get(const std::string& key,
                  const std::string& fallback = "") const;
  int get_int(const std::string& key, int fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys not in `known`, for typo detection.
  std::vector<std::string> unknown_keys(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace cannikin
