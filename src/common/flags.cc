#include "common/flags.h"

#include <algorithm>
#include <stdexcept>

namespace cannikin {

Flags Flags::parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) continue;  // bare "--" separator
    const auto equals = body.find('=');
    if (equals != std::string::npos) {
      flags.values_[body.substr(0, equals)] = body.substr(equals + 1);
      continue;
    }
    // "--key value" unless the next token is itself a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[body] = argv[++i];
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

bool Flags::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Flags::get(const std::string& key,
                       const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int Flags::get_int(const std::string& key, int fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stoi(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + key + " expects an integer, got " +
                                it->second);
  }
}

double Flags::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + key + " expects a number, got " +
                                it->second);
  }
}

bool Flags::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("flag --" + key + " expects a boolean, got " +
                              v);
}

std::vector<std::string> Flags::unknown_keys(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      unknown.push_back(key);
    }
  }
  return unknown;
}

}  // namespace cannikin
