// Minimal leveled logger used across the Cannikin libraries.
//
// The logger writes to stderr and is safe to call from multiple threads
// (each message is formatted into a single buffer and written with one
// stream insertion). Verbosity is a process-wide setting; benches and
// tests default to kWarn so expected-noise paths stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace cannikin {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the process-wide minimum level that will be emitted.
void set_log_level(LogLevel level);

/// Returns the current process-wide minimum level.
LogLevel log_level();

namespace detail {
void log_message(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace cannikin

#define CANNIKIN_LOG(level)                                 \
  if (static_cast<int>(level) <                             \
      static_cast<int>(::cannikin::log_level())) {          \
  } else                                                    \
    ::cannikin::detail::LogLine(level)

#define LOG_DEBUG CANNIKIN_LOG(::cannikin::LogLevel::kDebug)
#define LOG_INFO CANNIKIN_LOG(::cannikin::LogLevel::kInfo)
#define LOG_WARN CANNIKIN_LOG(::cannikin::LogLevel::kWarn)
#define LOG_ERROR CANNIKIN_LOG(::cannikin::LogLevel::kError)
