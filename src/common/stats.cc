#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace cannikin {

void RunningMoments::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningMoments::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningMoments::stddev() const { return std::sqrt(variance()); }

Ema::Ema(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("Ema: alpha must be in (0, 1]");
  }
}

void Ema::add(double x) {
  biased_ = (1.0 - alpha_) * biased_ + alpha_ * x;
  correction_ = (1.0 - alpha_) * correction_ + alpha_;
  ++steps_;
}

double Ema::value() const {
  if (steps_ == 0) return 0.0;
  return biased_ / correction_;
}

std::optional<LinearFit> fit_line(const std::vector<double>& xs,
                                  const std::vector<double>& ys,
                                  const std::vector<double>& weights) {
  if (xs.size() != ys.size() || xs.size() != weights.size()) {
    throw std::invalid_argument("fit_line: size mismatch");
  }
  if (xs.size() < 2) return std::nullopt;

  double sw = 0.0, swx = 0.0, swy = 0.0, swxx = 0.0, swxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double w = weights[i];
    if (w <= 0.0) throw std::invalid_argument("fit_line: weight <= 0");
    sw += w;
    swx += w * xs[i];
    swy += w * ys[i];
    swxx += w * xs[i] * xs[i];
    swxy += w * xs[i] * ys[i];
  }
  const double denom = sw * swxx - swx * swx;
  // Degenerate when all x are (numerically) equal.
  if (std::abs(denom) < 1e-12 * std::max(1.0, sw * swxx)) return std::nullopt;

  LinearFit fit;
  fit.slope = (sw * swxy - swx * swy) / denom;
  fit.intercept = (swy - fit.slope * swx) / sw;
  fit.n = xs.size();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - (fit.slope * xs[i] + fit.intercept);
    fit.rss += weights[i] * r * r;
  }
  return fit;
}

std::optional<LinearFit> fit_line(const std::vector<double>& xs,
                                  const std::vector<double>& ys) {
  return fit_line(xs, ys, std::vector<double>(xs.size(), 1.0));
}

Observation inverse_variance_combine(const std::vector<Observation>& obs) {
  if (obs.empty()) throw std::invalid_argument("combine: empty input");

  double min_positive = std::numeric_limits<double>::infinity();
  for (const auto& o : obs) {
    if (o.variance > 0.0) min_positive = std::min(min_positive, o.variance);
  }
  if (!std::isfinite(min_positive)) return mean_combine(obs);

  double weight_sum = 0.0;
  double value = 0.0;
  for (const auto& o : obs) {
    const double var = o.variance > 0.0 ? o.variance : min_positive;
    const double w = 1.0 / var;
    weight_sum += w;
    value += w * o.value;
  }
  return {value / weight_sum, 1.0 / weight_sum};
}

Observation mean_combine(const std::vector<Observation>& obs) {
  if (obs.empty()) throw std::invalid_argument("combine: empty input");
  double value = 0.0;
  double variance = 0.0;
  for (const auto& o : obs) {
    value += o.value;
    variance += std::max(o.variance, 0.0);
  }
  const double n = static_cast<double>(obs.size());
  return {value / n, variance / (n * n)};
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double v : xs) total += v;
  return total / static_cast<double>(xs.size());
}

double sample_variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double total = 0.0;
  for (double v : xs) total += (v - m) * (v - m);
  return total / static_cast<double>(xs.size() - 1);
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p outside [0, 100]");
  }
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace cannikin
