#include "common/serialize.h"

#include <array>
#include <cstring>

namespace cannikin::common {

namespace {

constexpr char kMagic[4] = {'C', 'K', 'P', 'T'};

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void BinaryWriter::u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

void BinaryWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void BinaryWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void BinaryWriter::i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
void BinaryWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void BinaryWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void BinaryWriter::bytes(const void* data, std::size_t len) {
  buf_.append(static_cast<const char*>(data), len);
}

void BinaryWriter::str(std::string_view s) {
  u64(s.size());
  buf_.append(s.data(), s.size());
}

void BinaryWriter::doubles(std::span<const double> values) {
  u64(values.size());
  for (double v : values) f64(v);
}

void BinaryWriter::ints(std::span<const int> values) {
  u64(values.size());
  for (int v : values) i32(v);
}

const char* BinaryReader::need(std::size_t n) {
  if (n > data_.size() - pos_) {
    throw SerializeError("BinaryReader: truncated input (need " +
                         std::to_string(n) + " bytes, have " +
                         std::to_string(data_.size() - pos_) + ")");
  }
  const char* p = data_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint8_t BinaryReader::u8() {
  return static_cast<std::uint8_t>(*need(1));
}

std::uint32_t BinaryReader::u32() {
  const char* p = need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t BinaryReader::u64() {
  const char* p = need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::int32_t BinaryReader::i32() { return static_cast<std::int32_t>(u32()); }
std::int64_t BinaryReader::i64() { return static_cast<std::int64_t>(u64()); }

double BinaryReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string BinaryReader::str() {
  const std::uint64_t len = u64();
  if (len > data_.size() - pos_) {
    throw SerializeError("BinaryReader: truncated string");
  }
  const char* p = need(static_cast<std::size_t>(len));
  return std::string(p, static_cast<std::size_t>(len));
}

std::vector<double> BinaryReader::doubles() {
  const std::uint64_t count = u64();
  if (count > (data_.size() - pos_) / sizeof(double)) {
    throw SerializeError("BinaryReader: truncated double array");
  }
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(f64());
  return out;
}

std::vector<int> BinaryReader::ints() {
  const std::uint64_t count = u64();
  if (count > (data_.size() - pos_) / sizeof(std::int32_t)) {
    throw SerializeError("BinaryReader: truncated int array");
  }
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(i32());
  return out;
}

std::string frame_checkpoint(std::string_view body, std::uint32_t version) {
  BinaryWriter out;
  out.bytes(kMagic, sizeof(kMagic));
  out.u32(version);
  out.u64(body.size());
  out.bytes(body.data(), body.size());
  out.u32(crc32(body.data(), body.size()));
  return out.take();
}

std::string unframe_checkpoint(std::string_view file,
                               std::uint32_t expected_version) {
  constexpr std::size_t kHeader = sizeof(kMagic) + 4 + 8;  // magic+ver+len
  if (file.size() < kHeader + 4) {
    throw SerializeError("checkpoint: file truncated before header");
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    throw SerializeError("checkpoint: bad magic");
  }
  BinaryReader in(file.substr(sizeof(kMagic)));
  const std::uint32_t version = in.u32();
  if (version != expected_version) {
    throw SerializeError("checkpoint: unsupported version " +
                         std::to_string(version) + " (expected " +
                         std::to_string(expected_version) + ")");
  }
  const std::uint64_t body_len = in.u64();
  if (body_len != file.size() - kHeader - 4) {
    throw SerializeError("checkpoint: body length mismatch (declares " +
                         std::to_string(body_len) + " bytes, file holds " +
                         std::to_string(file.size() - kHeader - 4) + ")");
  }
  const std::string_view body = file.substr(kHeader, body_len);
  BinaryReader crc_in(file.substr(kHeader + body_len));
  const std::uint32_t stored_crc = crc_in.u32();
  const std::uint32_t actual_crc = crc32(body.data(), body.size());
  if (stored_crc != actual_crc) {
    throw SerializeError("checkpoint: CRC mismatch (file corrupt)");
  }
  return std::string(body);
}

}  // namespace cannikin::common
