// Statistics primitives used by Cannikin's online parameter learning:
// running moments, exponential moving averages, weighted least squares
// for the linear computing-time models (Eq. 3), and inverse-variance
// combination of repeated observations (Section 4.5, "Parameter
// learning").
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace cannikin {

/// Welford running mean / variance.
class RunningMoments {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 until two samples are seen.
  double variance() const;
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Exponential moving average with bias correction (as used by AdaptDL
/// for smoothing the gradient-noise statistics).
class Ema {
 public:
  explicit Ema(double alpha = 0.1);
  void add(double x);
  bool empty() const { return steps_ == 0; }
  /// Bias-corrected current value; 0 before any sample.
  double value() const;
  std::size_t steps() const { return steps_; }

 private:
  double alpha_;
  double biased_ = 0.0;
  double correction_ = 0.0;
  std::size_t steps_ = 0;
};

/// Result of a simple linear fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Residual sum of squares of the weighted fit.
  double rss = 0.0;
  std::size_t n = 0;
};

/// Weighted least-squares fit of a line. Requires at least two points
/// with distinct x; returns std::nullopt otherwise. Weights must be
/// positive; pass all-ones for ordinary least squares.
std::optional<LinearFit> fit_line(const std::vector<double>& xs,
                                  const std::vector<double>& ys,
                                  const std::vector<double>& weights);

/// Ordinary least squares overload.
std::optional<LinearFit> fit_line(const std::vector<double>& xs,
                                  const std::vector<double>& ys);

/// One observation of a quantity with an associated variance estimate.
struct Observation {
  double value = 0.0;
  double variance = 0.0;
};

/// Inverse-variance weighted combination of independent observations of
/// the same quantity; the minimum-variance unbiased linear combination.
/// Observations with non-positive variance are treated as having the
/// smallest positive variance present (they are near-exact); if all
/// variances are non-positive the plain mean is returned.
Observation inverse_variance_combine(const std::vector<Observation>& obs);

/// Plain average combination (the ablation baseline for Section 5.3).
Observation mean_combine(const std::vector<Observation>& obs);

/// Sample mean of a vector; 0 for empty input.
double mean(const std::vector<double>& xs);

/// Unbiased sample variance; 0 for fewer than two values.
double sample_variance(const std::vector<double>& xs);

/// Linearly interpolated percentile, p in [0, 100].
double percentile(std::vector<double> xs, double p);

}  // namespace cannikin
