// Binary serialization primitives for checkpoint/restore.
//
// Checkpoints must survive exactly the failures they exist for: a
// process killed mid-write, a torn disk block, a stray bit flip. The
// format here is therefore deliberately paranoid rather than clever:
// a little-endian byte stream (BinaryWriter/BinaryReader, every read
// bounds-checked) wrapped in a framed file -- magic, format version,
// body length, body, CRC32 of the body -- so truncation and corruption
// are both detected before any field is interpreted. Checkpoints are
// read on the machine that wrote them (restart, not migration), so
// native double encoding is acceptable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cannikin::common {

/// Raised for any malformed serialized input: truncation, CRC or magic
/// mismatch, wrong version, or a field that fails validation.
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). `crc` chains
/// incremental computations; pass 0 to start.
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t crc = 0);

/// Appends fixed-width little-endian fields to a growing byte buffer.
class BinaryWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void bytes(const void* data, std::size_t len);
  /// u64 length prefix + raw bytes.
  void str(std::string_view s);
  /// u64 count prefix + packed doubles.
  void doubles(std::span<const double> values);
  /// u64 count prefix + packed i32s.
  void ints(std::span<const int> values);

  const std::string& buffer() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Reads BinaryWriter output; every accessor throws SerializeError
/// instead of reading past the end, so truncated input can never walk
/// off the buffer.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  std::int64_t i64();
  double f64();
  std::string str();
  std::vector<double> doubles();
  std::vector<int> ints();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  const char* need(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Wraps `body` in the checkpoint file frame:
///   "CKPT" | u32 version | u64 body length | body | u32 crc32(body)
std::string frame_checkpoint(std::string_view body, std::uint32_t version);

/// Validates the frame and returns the body. Throws SerializeError on
/// bad magic, unsupported version, truncated body, or CRC mismatch.
std::string unframe_checkpoint(std::string_view file,
                               std::uint32_t expected_version);

}  // namespace cannikin::common
