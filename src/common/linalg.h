// Small dense linear algebra used by the OptPerf solvers and the
// minimum-variance GNS aggregation (Theorem 4.1).
//
// The matrices involved are tiny (n x n where n is the number of GPUs,
// i.e. <= a few dozen), so a straightforward row-major matrix with
// partially pivoted LU decomposition is both simple and fast enough.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <vector>

namespace cannikin {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix from nested initializer lists; all rows must have
  /// equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  bool operator==(const Matrix& other) const = default;

  Matrix transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Vector operator*(const Vector& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix operator*(double scalar) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Thrown when a linear system is (numerically) singular.
class SingularMatrixError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Solves A x = b by LU decomposition with partial pivoting.
/// Throws SingularMatrixError when A is singular to working precision.
Vector solve(Matrix a, Vector b);

/// Solves A X = B column-by-column; B given as a matrix.
Matrix solve(Matrix a, Matrix b);

/// Matrix inverse via LU; prefer solve() when only a product is needed.
Matrix inverse(const Matrix& a);

/// Dot product; sizes must match.
double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double norm2(const Vector& a);

/// Sum of elements.
double sum(const Vector& a);

}  // namespace cannikin
