// Tests for the CannikinController epoch workflow (Sections 4.1 / 4.5):
// even start, Eq. (8) bootstrap, switch to model-driven OptPerf plans,
// OptPerf_init caching with warm-started overlap search, fixed-batch
// mode, and GNS-driven batch growth.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "sim/cluster_factory.h"
#include "workloads/registry.h"

namespace cannikin::core {
namespace {

sim::ClusterJob make_job() {
  return sim::ClusterJob(sim::cluster_a(),
                         workloads::by_name("cifar10").profile,
                         sim::NoiseConfig::none(), 1);
}

ControllerOptions options_for(const sim::ClusterJob& job, bool adaptive) {
  ControllerOptions options;
  options.initial_total_batch = 64;
  options.max_total_batch = 2048;
  options.adaptive_batch = adaptive;
  (void)job;
  return options;
}

std::vector<double> caps_of(const sim::ClusterJob& job) {
  std::vector<double> caps;
  for (int i = 0; i < job.size(); ++i) caps.push_back(job.max_local_batch(i));
  return caps;
}

void feed_epoch(CannikinController& controller, sim::ClusterJob& job,
                const std::vector<int>& batches) {
  const auto obs = job.run_epoch(batches, 4);
  std::vector<int> b;
  std::vector<double> a, p, g, to, tu;
  for (const auto& node : obs.nodes) {
    b.push_back(node.local_batch);
    a.push_back(node.a);
    p.push_back(node.p);
    g.push_back(node.gamma);
    to.push_back(node.t_other);
    tu.push_back(node.t_last);
  }
  controller.observe_epoch(b, a, p, g, to, tu);
}

TEST(Controller, FirstEpochIsEvenSplitAtInitialBatch) {
  auto job = make_job();
  CannikinController controller(3, caps_of(job), options_for(job, true));
  const auto plan = controller.plan_epoch();
  EXPECT_EQ(plan.epoch, 0);
  EXPECT_EQ(plan.total_batch, 64);
  EXPECT_FALSE(plan.from_model);
  int total = 0;
  for (int b : plan.local_batches) {
    EXPECT_NEAR(b, 64 / 3, 1.0);
    total += b;
  }
  EXPECT_EQ(total, 64);
}

TEST(Controller, SecondEpochUsesEq8Bootstrap) {
  auto job = make_job();
  CannikinController controller(3, caps_of(job), options_for(job, true));
  const auto first = controller.plan_epoch();
  feed_epoch(controller, job, first.local_batches);

  const auto second = controller.plan_epoch();
  EXPECT_FALSE(second.from_model);
  EXPECT_EQ(second.total_batch, 64);
  // Eq. (8): faster nodes (a5000 > a4000 > p4000) get larger batches.
  EXPECT_GT(second.local_batches[0], second.local_batches[1]);
  EXPECT_GT(second.local_batches[1], second.local_batches[2]);
}

TEST(Controller, SwitchesToModelAfterTwoDistinctBatchSizes) {
  auto job = make_job();
  CannikinController controller(3, caps_of(job), options_for(job, true));
  for (int epoch = 0; epoch < 2; ++epoch) {
    feed_epoch(controller, job, controller.plan_epoch().local_batches);
  }
  EXPECT_TRUE(controller.model_ready());
  const auto plan = controller.plan_epoch();
  EXPECT_TRUE(plan.from_model);
  EXPECT_TRUE(plan.cache_rebuilt);  // first model epoch builds OptPerf_init
  EXPECT_GT(plan.predicted_batch_time, 0.0);
  EXPECT_GT(plan.linear_solves, 0);
}

TEST(Controller, LaterEpochsReuseCacheWithoutRebuild) {
  auto job = make_job();
  CannikinController controller(3, caps_of(job), options_for(job, true));
  controller.update_gns_value(100.0);
  for (int epoch = 0; epoch < 3; ++epoch) {
    feed_epoch(controller, job, controller.plan_epoch().local_batches);
  }
  // Stationary GNS: the overlap state should not flip, so no rebuild.
  const auto plan = controller.plan_epoch();
  EXPECT_TRUE(plan.from_model);
  EXPECT_FALSE(plan.cache_rebuilt);
}

TEST(Controller, GnsGrowthIncreasesChosenBatch) {
  auto job = make_job();
  CannikinController controller(3, caps_of(job), options_for(job, true));
  controller.update_gns_value(50.0);
  for (int epoch = 0; epoch < 2; ++epoch) {
    feed_epoch(controller, job, controller.plan_epoch().local_batches);
  }
  const auto early = controller.plan_epoch();
  feed_epoch(controller, job, early.local_batches);

  for (int i = 0; i < 30; ++i) controller.update_gns_value(50000.0);
  const auto late = controller.plan_epoch();
  EXPECT_GT(late.total_batch, early.total_batch);
}

TEST(Controller, FixedModeKeepsTotalBatchButOptimizesSplit) {
  auto job = make_job();
  CannikinController controller(3, caps_of(job), options_for(job, false));
  std::vector<int> last;
  for (int epoch = 0; epoch < 4; ++epoch) {
    const auto plan = controller.plan_epoch();
    EXPECT_EQ(plan.total_batch, 64);
    feed_epoch(controller, job, plan.local_batches);
    last = plan.local_batches;
  }
  // Model-driven: the fast a5000 should now carry the largest share.
  EXPECT_GT(last[0], last[2]);
}

TEST(Controller, PlansAlwaysSumToTotalBatch) {
  auto job = make_job();
  CannikinController controller(3, caps_of(job), options_for(job, true));
  controller.update_gns_value(1000.0);
  for (int epoch = 0; epoch < 10; ++epoch) {
    const auto plan = controller.plan_epoch();
    int total = 0;
    for (int b : plan.local_batches) total += b;
    EXPECT_EQ(total, plan.total_batch) << "epoch " << epoch;
    feed_epoch(controller, job, plan.local_batches);
  }
}

TEST(Controller, LearnedModelsApproachTruth) {
  auto job = make_job();
  CannikinController controller(3, caps_of(job), options_for(job, true));
  for (int epoch = 0; epoch < 6; ++epoch) {
    feed_epoch(controller, job, controller.plan_epoch().local_batches);
  }
  const auto models = controller.learned_models();
  const auto comm = controller.learned_comm();
  ASSERT_TRUE(models && comm);
  for (int i = 0; i < 3; ++i) {
    const auto& truth = job.truth(i);
    const auto& learned = (*models)[static_cast<std::size_t>(i)];
    EXPECT_NEAR(learned.q + learned.k, truth.q + truth.k,
                0.05 * (truth.q + truth.k));
  }
  EXPECT_NEAR(comm->gamma, job.gamma(), 1e-9);
  EXPECT_NEAR(comm->t_other, job.comm().t_other, 1e-9);
}

TEST(Controller, Validation) {
  ControllerOptions bad;
  bad.initial_total_batch = 0;
  bad.max_total_batch = 10;
  EXPECT_THROW(CannikinController(2, {10.0, 10.0}, bad),
               std::invalid_argument);
  ControllerOptions good;
  good.initial_total_batch = 16;
  good.max_total_batch = 64;
  EXPECT_THROW(CannikinController(0, {}, good), std::invalid_argument);
  EXPECT_THROW(CannikinController(2, {10.0}, good), std::invalid_argument);
}

TEST(Controller, ObserveEpochRejectsMismatchedVectors) {
  auto job = make_job();
  CannikinController controller(3, caps_of(job), options_for(job, true));
  const std::vector<int> b{20, 20, 20};
  const std::vector<double> ok{0.1, 0.1, 0.1};
  const std::vector<double> shorter{0.1, 0.1};
  // Every per-node vector must have exactly num_nodes entries; a length
  // mismatch is a caller bug (e.g. feeding a shrunken allocation's
  // observations to a stale controller) and must fail loudly instead of
  // silently corrupting the learners.
  EXPECT_THROW(controller.observe_epoch({20, 20}, ok, ok, ok, ok, ok),
               std::invalid_argument);
  EXPECT_THROW(controller.observe_epoch(b, shorter, ok, ok, ok, ok),
               std::invalid_argument);
  EXPECT_THROW(controller.observe_epoch(b, ok, shorter, ok, ok, ok),
               std::invalid_argument);
  EXPECT_THROW(controller.observe_epoch(b, ok, ok, shorter, ok, ok),
               std::invalid_argument);
  EXPECT_THROW(controller.observe_epoch(b, ok, ok, ok, shorter, ok),
               std::invalid_argument);
  EXPECT_THROW(controller.observe_epoch(b, ok, ok, ok, ok, shorter),
               std::invalid_argument);
  // A valid observation still goes through afterwards.
  controller.observe_epoch(b, ok, ok, ok, ok, ok);
}

TEST(Controller, UpdateGnsRejectsBadNormVectors) {
  auto job = make_job();
  CannikinController controller(3, caps_of(job), options_for(job, true));
  EXPECT_THROW(controller.update_gns({}, {}, 1.0), std::invalid_argument);
  EXPECT_THROW(controller.update_gns({32.0, 32.0}, {1.0}, 1.0),
               std::invalid_argument);
  controller.update_gns({32.0, 32.0}, {1.0, 1.2}, 0.9);
}

}  // namespace
}  // namespace cannikin::core
