// Tests for the scheduler subsystem: model bank (+ serialization),
// goodput allocation, elastic jobs with warm-started models, and the
// multi-job simulation.
#include <gtest/gtest.h>

#include "sched/elastic_job.h"
#include "sched/model_bank.h"
#include "sched/multi_job_sim.h"
#include "sched/scheduler.h"
#include "sim/cluster_factory.h"
#include "workloads/registry.h"

namespace cannikin::sched {
namespace {

// ------------------------------------------------------------- ModelBank

TEST(ModelBank, NodeKeyDistinguishesHardware) {
  sim::NodeSpec a{sim::GpuModel::kA100, "x", 1.0, 2.0};
  sim::NodeSpec b{sim::GpuModel::kA100, "y", 1.0, 2.0};
  sim::NodeSpec c{sim::GpuModel::kA100, "z", 0.5, 2.0};
  sim::NodeSpec d{sim::GpuModel::kV100, "w", 1.0, 2.0};
  // Same hardware combination -> same key regardless of host name.
  EXPECT_EQ(ModelBank::node_key(a), ModelBank::node_key(b));
  EXPECT_NE(ModelBank::node_key(a), ModelBank::node_key(c));
  EXPECT_NE(ModelBank::node_key(a), ModelBank::node_key(d));
}

TEST(ModelBank, StoreAndLookup) {
  ModelBank bank;
  EXPECT_TRUE(bank.empty());
  EXPECT_FALSE(bank.node("a100/h2.000/c1.000").has_value());

  core::NodeModel model{1e-3, 2e-3, 3e-3, 4e-3, 128.0};
  bank.store_node("a100/h2.000/c1.000", model);
  const auto got = bank.node("a100/h2.000/c1.000");
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->q, 1e-3);
  EXPECT_DOUBLE_EQ(got->max_batch, 128.0);

  bank.store_comm(16, {0.2, 0.5, 0.1});
  EXPECT_TRUE(bank.comm(16).has_value());
  EXPECT_FALSE(bank.comm(8).has_value());
  EXPECT_FALSE(bank.empty());
}

TEST(ModelBank, SerializationRoundTrip) {
  ModelBank bank;
  bank.store_node("a100/h2.000/c1.000", {1e-3, 2e-3, 3e-3, 4e-3, 128.0});
  bank.store_node("rtx6000/h1.300/c1.000", {5e-3, 6e-3, 7e-3, 8e-3, 64.0});
  bank.store_comm(16, {0.18, 0.52, 0.11});
  bank.store_comm(8, {0.18, 0.31, 0.07});

  const ModelBank restored = ModelBank::deserialize(bank.serialize());
  EXPECT_EQ(restored.num_node_entries(), 2u);
  EXPECT_EQ(restored.num_comm_entries(), 2u);
  const auto node = restored.node("rtx6000/h1.300/c1.000");
  ASSERT_TRUE(node.has_value());
  EXPECT_DOUBLE_EQ(node->k, 7e-3);
  const auto comm = restored.comm(8);
  ASSERT_TRUE(comm.has_value());
  EXPECT_DOUBLE_EQ(comm->t_other, 0.31);
}

TEST(ModelBank, DeserializeRejectsGarbage) {
  EXPECT_THROW(ModelBank::deserialize("nope"), std::invalid_argument);
  EXPECT_THROW(ModelBank::deserialize("modelbank v1\nnode onlykey"),
               std::invalid_argument);
  EXPECT_THROW(ModelBank::deserialize("modelbank v1\nwidget 1 2 3"),
               std::invalid_argument);
}

// ------------------------------------------------------- warm-start prior

TEST(PerfModelPriors, PriorMakesLearnerReadyUntilRealFit) {
  core::NodePerfLearner learner;
  EXPECT_FALSE(learner.ready());
  learner.set_prior({1e-3, 2e-3, 3e-3, 4e-3, 1e9});
  EXPECT_TRUE(learner.ready());
  EXPECT_DOUBLE_EQ(learner.fit()->q, 1e-3);

  // Real observations at two distinct sizes replace the prior.
  learner.observe(10, 0.1, 0.2);
  EXPECT_DOUBLE_EQ(learner.fit()->q, 1e-3);  // still the prior
  learner.observe(20, 0.2, 0.4);
  EXPECT_NEAR(learner.fit()->q, 0.01, 1e-12);  // identified
}

TEST(PerfModelPriors, ControllerWarmStartSkipsBootstrap) {
  const auto& workload = workloads::by_name("cifar10");
  sim::ClusterJob job(sim::cluster_a(), workload.profile,
                      sim::NoiseConfig::none(), 1);
  std::vector<double> caps;
  std::vector<std::optional<core::NodeModel>> priors;
  for (int i = 0; i < job.size(); ++i) {
    caps.push_back(job.max_local_batch(i));
    const auto& t = job.truth(i);
    priors.push_back(core::NodeModel{
        t.q, t.s, t.k, t.m, static_cast<double>(t.max_local_batch)});
  }
  core::ControllerOptions options;
  options.initial_total_batch = workload.b0;
  options.max_total_batch = workload.max_total_batch;
  core::CannikinController controller(job.size(), caps, options);
  controller.warm_start(
      priors,
      core::CommTimes{job.gamma(), job.comm().t_other, job.comm().t_last},
      200.0);

  EXPECT_TRUE(controller.model_ready());
  const auto plan = controller.plan_epoch();
  EXPECT_TRUE(plan.from_model);  // no bootstrap epochs at all
  EXPECT_GT(plan.predicted_batch_time, 0.0);
}

// -------------------------------------------------------------- Scheduler

TEST(GoodputScheduler, EveryNodeAssignedAndMinNodesRespected) {
  GoodputScheduler scheduler(sim::cluster_b());
  const std::vector<SchedulerJobInfo> jobs{
      {&workloads::by_name("cifar10"), 500.0, 2},
      {&workloads::by_name("imagenet"), 1000.0, 2},
  };
  const Allocation allocation = scheduler.allocate(jobs);
  ASSERT_EQ(allocation.num_nodes(), 16);
  for (int node = 0; node < allocation.num_nodes(); ++node) {
    ASSERT_NE(allocation.job_of(node), kNoJob) << "node " << node;
  }
  EXPECT_GE(allocation.size_of(0), 2);
  EXPECT_GE(allocation.size_of(1), 2);
  EXPECT_EQ(allocation.size_of(0) + allocation.size_of(1), 16);
}

TEST(GoodputScheduler, EmptyJobListLeavesNodesIdle) {
  GoodputScheduler scheduler(sim::cluster_a());
  const Allocation allocation = scheduler.allocate({});
  EXPECT_TRUE(allocation.empty());
  EXPECT_EQ(allocation.free_nodes().size(),
            static_cast<std::size_t>(allocation.num_nodes()));
}

TEST(GoodputScheduler, GoodputGrowsWithNodes) {
  GoodputScheduler scheduler(sim::cluster_b());
  const SchedulerJobInfo job{&workloads::by_name("imagenet"), 2000.0, 1};
  const double one = scheduler.estimated_goodput(job, {0});
  const double four = scheduler.estimated_goodput(job, {0, 1, 2, 3});
  const double eight =
      scheduler.estimated_goodput(job, {0, 1, 2, 3, 8, 9, 10, 11});
  EXPECT_GT(one, 0.0);
  EXPECT_GT(four, one);
  EXPECT_GT(eight, four);
  EXPECT_DOUBLE_EQ(scheduler.estimated_goodput(job, {}), 0.0);
}

TEST(GoodputScheduler, ComputeHungryJobGetsTheFastGpus) {
  GoodputScheduler scheduler(sim::cluster_b());
  // ImageNet (compute heavy) vs MovieLens (fixed-cost dominated): the
  // A100s (nodes 0-3) matter far more to ImageNet.
  const std::vector<SchedulerJobInfo> jobs{
      {&workloads::by_name("movielens"), 5000.0, 1},
      {&workloads::by_name("imagenet"), 5000.0, 1},
  };
  const Allocation allocation = scheduler.allocate(jobs);
  int a100_to_imagenet = 0;
  for (int node = 0; node < 4; ++node) {
    if (allocation.job_of(node) == 1) ++a100_to_imagenet;
  }
  EXPECT_GE(a100_to_imagenet, 3);
}

// ------------------------------------------------------------ ElasticJob

TEST(ElasticJob, RunsAndMakesProgress) {
  const auto& workload = workloads::by_name("cifar10");
  ElasticCannikinJob job(&workload, sim::cluster_b(), sim::NoiseConfig{}, 3);
  EXPECT_FALSE(job.has_allocation());
  EXPECT_THROW(job.run_epoch(), std::logic_error);

  job.set_allocation({0, 4, 8, 9});
  ASSERT_TRUE(job.has_allocation());
  double clock = 0.0;
  for (int epoch = 0; epoch < 5; ++epoch) clock += job.run_epoch();
  EXPECT_GT(clock, 0.0);
  EXPECT_GT(job.progress_fraction(), 0.0);
  EXPECT_EQ(job.epochs_run(), 5);
}

TEST(ElasticJob, ReallocationBanksAndWarmStarts) {
  const auto& workload = workloads::by_name("cifar10");
  ElasticCannikinJob job(&workload, sim::cluster_b(), sim::NoiseConfig{}, 3,
                         /*use_model_bank=*/true);
  // First allocation covers one node of each type.
  job.set_allocation({0, 4, 8});
  for (int epoch = 0; epoch < 5; ++epoch) job.run_epoch();
  EXPECT_EQ(job.warm_reallocations(), 0);

  // New allocation: different physical nodes, same hardware types ->
  // fully covered by the bank.
  job.set_allocation({1, 5, 9, 10});
  EXPECT_EQ(job.warm_reallocations(), 1);
  EXPECT_GE(job.bank().num_node_entries(), 3u);

  // The warm-started controller plans from the model immediately.
  const double before = job.progress_fraction();
  job.run_epoch();
  EXPECT_GT(job.progress_fraction(), before);
}

TEST(ElasticJob, WarmStartRecoversFasterThanColdRestart) {
  const auto& workload = workloads::by_name("cifar10");

  auto run = [&](bool use_bank) {
    ElasticCannikinJob job(&workload, sim::cluster_b(), sim::NoiseConfig{},
                           7, use_bank);
    job.set_allocation({0, 4, 8});
    double clock = 0.0;
    for (int epoch = 0; epoch < 6; ++epoch) clock += job.run_epoch();
    // Scale out to different same-type nodes mid-training.
    job.set_allocation({1, 2, 5, 9, 10});
    while (!job.done() && job.epochs_run() < 600) clock += job.run_epoch();
    return clock;
  };

  const double warm = run(true);
  const double cold = run(false);
  // Cold restart repeats the bootstrap epochs at the small initial
  // batch, which is expensive; the bank avoids them.
  EXPECT_LT(warm, cold);
}

// ------------------------------------------------------------- Multi-job

TEST(MultiJob, AllJobsCompleteAndSchedulerBeatsStaticPartition) {
  // Job order chosen so the blind static partition hands the A100s to
  // the fixed-cost-dominated MovieLens job where they are wasted; the
  // goodput scheduler routes them to compute-hungry ImageNet instead.
  const std::vector<const workloads::Workload*> jobs{
      &workloads::by_name("movielens"), &workloads::by_name("imagenet")};

  MultiJobOptions goodput;
  goodput.policy = AllocationPolicy::kGoodputScheduler;
  goodput.seed = 11;
  const auto smart = run_multi_job(sim::cluster_b(), jobs, goodput);

  MultiJobOptions fixed;
  fixed.policy = AllocationPolicy::kStaticPartition;
  fixed.seed = 11;
  const auto naive = run_multi_job(sim::cluster_b(), jobs, fixed);

  for (const auto& outcome : smart.jobs) {
    EXPECT_GT(outcome.completion_seconds, 0.0) << outcome.workload;
  }
  for (const auto& outcome : naive.jobs) {
    EXPECT_GT(outcome.completion_seconds, 0.0) << outcome.workload;
  }
  // Goodput-aware heterogeneous allocation + elastic scale-up on job
  // completion beats the blind static split.
  EXPECT_LT(smart.makespan, naive.makespan);
  EXPECT_LT(smart.mean_completion, naive.mean_completion * 1.05);
}

TEST(MultiJob, Validation) {
  EXPECT_THROW(run_multi_job(sim::cluster_a(), {}), std::invalid_argument);
  const std::vector<const workloads::Workload*> too_many(
      5, &workloads::by_name("cifar10"));
  EXPECT_THROW(run_multi_job(sim::cluster_a(), too_many),
               std::invalid_argument);
}

}  // namespace
}  // namespace cannikin::sched
