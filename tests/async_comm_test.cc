// Tests for the async comm engine: Work handles, the per-rank progress
// thread, pending-Work cancellation on abort, the TagAllocator, the
// binomial-tree broadcast, the BucketReducer and link latency. The
// stress tests are the TSan targets for concurrent in-flight Works.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "comm/bucket.h"
#include "comm/collectives.h"
#include "comm/process_group.h"
#include "comm/tag_allocator.h"
#include "comm/work.h"

namespace cannikin::comm {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Runs `fn(rank, comm)` on one thread per rank and joins.
template <typename Fn>
void run_ranks(ProcessGroup& group, Fn fn) {
  std::vector<std::thread> threads;
  for (int rank = 0; rank < group.size(); ++rank) {
    threads.emplace_back([&, rank] {
      Communicator comm = group.communicator(rank);
      fn(rank, comm);
    });
  }
  for (auto& t : threads) t.join();
}

// ------------------------------------------------------------ Work basics

TEST(Work, CompletesAndReportsNoError) {
  ProcessGroup group(1);
  Communicator comm = group.communicator(0);
  std::atomic<bool> ran{false};
  WorkPtr work = comm.submit([&] { ran = true; });
  EXPECT_TRUE(work->wait());
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(work->is_completed());
  EXPECT_EQ(work->exception(), nullptr);
}

TEST(Work, WaitRethrowsTheOpError) {
  ProcessGroup group(1);
  Communicator comm = group.communicator(0);
  WorkPtr work =
      comm.submit([] { throw std::runtime_error("op exploded"); });
  EXPECT_THROW(work->wait(), std::runtime_error);
  EXPECT_TRUE(work->is_completed());
  EXPECT_NE(work->exception(), nullptr);
}

TEST(Work, WaitWithDeadlineReturnsFalseWhileOpIsBlocked) {
  // Rank 0's op blocks on a recv that is satisfied only after the
  // deadline-bounded wait has observed "not done yet".
  ProcessGroup group(2);
  Communicator comm0 = group.communicator(0);
  Communicator comm1 = group.communicator(1);
  WorkPtr work = comm0.submit([comm0]() mutable { comm0.recv(1, 3); });
  EXPECT_FALSE(work->wait(0.02));
  EXPECT_FALSE(work->is_completed());
  comm1.send(0, 3, {1.0});
  EXPECT_TRUE(work->wait());
}

TEST(Work, OutOfOrderWaitsObserveFifoExecution) {
  // Ops run in submission order on the progress thread, so waiting the
  // last Work implies every earlier one already ran.
  ProcessGroup group(1);
  Communicator comm = group.communicator(0);
  std::vector<int> order;
  std::vector<WorkPtr> works;
  for (int i = 0; i < 8; ++i) {
    works.push_back(comm.submit([&order, i] { order.push_back(i); }));
  }
  works.back()->wait();
  for (auto& work : works) EXPECT_TRUE(work->is_completed());
  const std::vector<int> expected{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(order, expected);  // safe: progress thread is done with them
}

// ---------------------------------------------------- async collectives

TEST(AsyncCollectives, AsyncRingAllReduceMatchesSync) {
  const int n = 4;
  ProcessGroup group(n);
  std::vector<std::vector<double>> data(
      static_cast<std::size_t>(n), std::vector<double>(33));
  run_ranks(group, [&](int rank, Communicator& comm) {
    auto& mine = data[static_cast<std::size_t>(rank)];
    std::iota(mine.begin(), mine.end(), static_cast<double>(rank));
    WorkPtr work = async_ring_all_reduce(comm, std::span<double>(mine), 5);
    work->wait();
  });
  for (std::size_t i = 0; i < 33; ++i) {
    // sum over ranks of (rank + i) = n*i + 0+1+2+3
    const double expected = 4.0 * static_cast<double>(i) + 6.0;
    for (int rank = 0; rank < n; ++rank) {
      EXPECT_DOUBLE_EQ(data[static_cast<std::size_t>(rank)][i], expected);
    }
  }
}

TEST(AsyncCollectives, ManyConcurrentInFlightWorksStress) {
  // The TSan target: 4 ranks x 32 in-flight bucket reductions, all
  // submitted before any wait. Each bucket must still sum correctly.
  const int n = 4;
  const int kBuckets = 32;
  const std::size_t kElems = 64;
  ProcessGroup group(n);
  std::vector<std::vector<double>> data(
      static_cast<std::size_t>(n),
      std::vector<double>(kBuckets * kElems, 1.0));
  run_ranks(group, [&](int rank, Communicator& comm) {
    auto& mine = data[static_cast<std::size_t>(rank)];
    const std::uint64_t base =
        comm.tags().block(CollectiveKind::kBucketAllReduce, kBuckets);
    std::vector<WorkPtr> works;
    for (int b = 0; b < kBuckets; ++b) {
      std::span<double> sub(mine.data() + b * kElems, kElems);
      works.push_back(async_ring_all_reduce(
          comm, sub, base + static_cast<std::uint64_t>(b)));
    }
    for (auto& work : works) work->wait();
  });
  for (int rank = 0; rank < n; ++rank) {
    for (double v : data[static_cast<std::size_t>(rank)]) {
      ASSERT_DOUBLE_EQ(v, static_cast<double>(n));
    }
  }
}

// --------------------------------------------------- abort cancellation

TEST(AsyncAbort, AbortCancelsPendingWorksWithoutHanging) {
  // No timeout configured: only abort() can release the in-flight op
  // (blocked in recv) and the works queued behind it.
  ProcessGroup group(2);
  Communicator comm = group.communicator(0);

  std::vector<WorkPtr> works;
  works.push_back(comm.submit([comm]() mutable { comm.recv(1, 9); }));
  for (int i = 0; i < 4; ++i) {
    works.push_back(comm.submit([] {}));  // queued, never reached
  }
  EXPECT_FALSE(works.front()->wait(0.02));

  const auto start = Clock::now();
  std::thread aborter([&group] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    group.abort();
  });
  for (auto& work : works) {
    EXPECT_THROW(work->wait(), CommAbortedError);
    EXPECT_TRUE(work->is_completed());
  }
  aborter.join();
  EXPECT_LT(seconds_since(start), 2.0);  // bounded unwind, no hang

  // The progress thread survives the abort and submit is poisoned.
  WorkPtr late = comm.submit([] {});
  EXPECT_THROW(late->wait(), CommAbortedError);
}

TEST(AsyncAbort, EngineSurvivesFailedOpsAndKeepsServing) {
  ProcessGroup group(1);
  Communicator comm = group.communicator(0);
  WorkPtr bad = comm.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad->wait(), std::runtime_error);
  WorkPtr good = comm.submit([] {});
  EXPECT_TRUE(good->wait());
}

// -------------------------------------------------------- TagAllocator

TEST(TagAllocator, DeterministicAcrossInstances) {
  TagAllocator a, b;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(a.next(CollectiveKind::kAllGather),
              b.next(CollectiveKind::kAllGather));
    EXPECT_EQ(a.block(CollectiveKind::kBucketAllReduce, 7),
              b.block(CollectiveKind::kBucketAllReduce, 7));
  }
}

TEST(TagAllocator, KindsGetDisjointRanges) {
  TagAllocator tags;
  const std::uint64_t bucket = tags.next(CollectiveKind::kBucketAllReduce);
  const std::uint64_t gather = tags.next(CollectiveKind::kAllGather);
  const std::uint64_t bcast = tags.next(CollectiveKind::kBroadcast);
  EXPECT_NE(bucket, gather);
  EXPECT_NE(gather, bcast);
  EXPECT_NE(bucket, bcast);
  // All tags carry the allocated bit, so they can never collide with
  // small hand-written literals -- even after the ring doubles them.
  EXPECT_NE(bucket & TagAllocator::kAllocatedBit, 0u);
}

TEST(TagAllocator, BlockReservesContiguousTagsAndValidates) {
  TagAllocator tags;
  const std::uint64_t first = tags.block(CollectiveKind::kBucketAllReduce, 3);
  const std::uint64_t after = tags.next(CollectiveKind::kBucketAllReduce);
  EXPECT_EQ(after, first + 3);
  EXPECT_THROW(tags.block(CollectiveKind::kBucketAllReduce, 0),
               std::invalid_argument);
  EXPECT_THROW(
      tags.block(CollectiveKind::kBucketAllReduce, TagAllocator::kMaxPerKind),
      std::overflow_error);
}

TEST(TagAllocator, ResetReplaysTheSameSequence) {
  TagAllocator tags;
  const std::uint64_t first = tags.next(CollectiveKind::kScalar);
  tags.next(CollectiveKind::kScalar);
  tags.reset();
  EXPECT_EQ(tags.next(CollectiveKind::kScalar), first);
}

// ------------------------------------------- binomial-tree broadcast

class BroadcastShapes : public ::testing::TestWithParam<
                            std::tuple<int /*ranks*/, int /*root*/>> {};

TEST_P(BroadcastShapes, RootValueReachesEveryRank) {
  const auto [n, root] = GetParam();
  ProcessGroup group(n);
  std::atomic<int> correct{0};
  run_ranks(group, [&, root = root](int rank, Communicator& comm) {
    std::vector<double> data;
    if (rank == root) data = {3.5, -1.0, 7.25};
    broadcast(comm, data, root, 11);
    if (data == std::vector<double>({3.5, -1.0, 7.25})) ++correct;
  });
  EXPECT_EQ(correct.load(), n);
}

// Non-power-of-two group sizes exercise the tree's ragged last level.
INSTANTIATE_TEST_SUITE_P(
    NonPowerOfTwo, BroadcastShapes,
    ::testing::Values(std::make_tuple(3, 0), std::make_tuple(3, 2),
                      std::make_tuple(5, 0), std::make_tuple(5, 3),
                      std::make_tuple(6, 5), std::make_tuple(7, 1),
                      std::make_tuple(8, 6)));

TEST(Broadcast, BadRootThrows) {
  ProcessGroup group(2);
  Communicator comm = group.communicator(0);
  std::vector<double> data{1.0};
  EXPECT_THROW(broadcast(comm, data, 2, 1), CommError);
  EXPECT_THROW(broadcast(comm, data, -1, 1), CommError);
}

// --------------------------------------------------------- BucketReducer

TEST(BucketReducerTest, MatchesSingleWeightedAllReduce) {
  const int n = 3;
  const std::size_t elems = 100;
  ProcessGroup group(n);
  const auto buckets = make_buckets(elems, 16);
  std::vector<std::vector<double>> reduced(
      static_cast<std::size_t>(n), std::vector<double>(elems));
  run_ranks(group, [&](int rank, Communicator& comm) {
    auto& mine = reduced[static_cast<std::size_t>(rank)];
    for (std::size_t i = 0; i < elems; ++i) {
      mine[i] = static_cast<double>(rank + 1) * static_cast<double>(i);
    }
    const double weight = 0.25;
    const std::uint64_t base =
        comm.tags().block(CollectiveKind::kBucketAllReduce, buckets.size());
    BucketReducer reducer(comm, std::span<double>(mine), weight, buckets,
                          base);
    // Mark ranges that deliberately straddle bucket boundaries, in the
    // tail-first order backward would produce.
    reducer.mark_ready(60, 40);
    reducer.mark_ready(25, 35);
    reducer.mark_ready(0, 25);
    const auto stats = reducer.finish();
    EXPECT_EQ(stats.num_buckets, buckets.size());
    EXPECT_EQ(stats.buckets_overlapped, buckets.size());
    EXPECT_GE(stats.total_comm_seconds, 0.0);
    EXPECT_GE(stats.last_bucket_seconds, 0.0);
    EXPECT_LE(stats.last_bucket_seconds, stats.total_comm_seconds + 1e-12);
  });
  // Element i: sum over ranks of 0.25 * (rank+1) * i = 0.25 * 6 * i.
  for (int rank = 0; rank < n; ++rank) {
    for (std::size_t i = 0; i < elems; ++i) {
      EXPECT_NEAR(reduced[static_cast<std::size_t>(rank)][i],
                  1.5 * static_cast<double>(i), 1e-9);
    }
  }
}

TEST(BucketReducerTest, FinishLaunchesBucketsNeverMarked) {
  // A rank with an empty local batch marks nothing; finish() must still
  // contribute its (zero) gradient to every bucket.
  const int n = 2;
  const std::size_t elems = 10;
  ProcessGroup group(n);
  const auto buckets = make_buckets(elems, 4);
  std::vector<std::vector<double>> reduced(
      static_cast<std::size_t>(n), std::vector<double>(elems));
  run_ranks(group, [&](int rank, Communicator& comm) {
    auto& mine = reduced[static_cast<std::size_t>(rank)];
    const double weight = rank == 0 ? 1.0 : 0.0;
    if (rank == 0) mine.assign(elems, 2.0);
    const std::uint64_t base =
        comm.tags().block(CollectiveKind::kBucketAllReduce, buckets.size());
    BucketReducer reducer(comm, std::span<double>(mine), weight, buckets,
                          base);
    if (rank == 0) reducer.mark_ready(0, elems);
    const auto stats = reducer.finish();
    if (rank == 0) {
      EXPECT_EQ(stats.buckets_overlapped, buckets.size());
    } else {
      EXPECT_EQ(stats.buckets_overlapped, 0u);
    }
  });
  for (int rank = 0; rank < n; ++rank) {
    for (double v : reduced[static_cast<std::size_t>(rank)]) {
      EXPECT_DOUBLE_EQ(v, 2.0);
    }
  }
}

TEST(BucketReducerTest, DoubleMarkAndMisuseThrow) {
  ProcessGroup group(1);
  Communicator comm = group.communicator(0);
  std::vector<double> grad(8, 1.0);
  const auto buckets = make_buckets(grad.size(), 4);
  BucketReducer reducer(comm, std::span<double>(grad), 1.0, buckets, 100);
  reducer.mark_ready(4, 4);
  EXPECT_THROW(reducer.mark_ready(4, 4), std::invalid_argument);
  EXPECT_THROW(reducer.mark_ready(6, 4), std::out_of_range);
  reducer.finish();
  EXPECT_THROW(reducer.finish(), std::logic_error);
  EXPECT_THROW(reducer.mark_ready(0, 4), std::logic_error);
}

TEST(BucketReducerTest, BucketBeyondGradientThrows) {
  ProcessGroup group(1);
  Communicator comm = group.communicator(0);
  std::vector<double> grad(4, 1.0);
  const std::vector<Bucket> bad{{2, 4}};
  EXPECT_THROW(
      BucketReducer(comm, std::span<double>(grad), 1.0, bad, 1),
      std::out_of_range);
}

// --------------------------------------------------------- link latency

TEST(LinkLatency, DelaysDeliveryWithoutBusyWaiting) {
  ProcessGroup group(2);
  group.set_link_latency(0.05);
  run_ranks(group, [&](int rank, Communicator& comm) {
    if (rank == 0) {
      comm.send(1, 4, {9.0});
    } else {
      const auto start = Clock::now();
      const Payload got = comm.recv(0, 4);
      EXPECT_GE(seconds_since(start), 0.03);  // send happened "instantly"
      EXPECT_DOUBLE_EQ(got[0], 9.0);
    }
  });
}

TEST(LinkLatency, AsyncWorkHidesLatencyBehindCompute) {
  // The point of the whole engine, in miniature: with the reduce in
  // flight on the progress thread, compute of comparable duration runs
  // concurrently and the total is well under the serial sum.
  const int n = 2;
  const double latency = 0.02;
  ProcessGroup group(n);
  group.set_link_latency(latency);
  std::atomic<int> hidden{0};
  run_ranks(group, [&](int rank, Communicator& comm) {
    (void)rank;
    std::vector<double> data(8, 1.0);
    const auto start = Clock::now();
    WorkPtr work = async_ring_all_reduce(comm, std::span<double>(data), 21);
    // "Backward compute": sleep while the reduce rides the link.
    std::this_thread::sleep_for(std::chrono::milliseconds(35));
    work->wait();
    // Serial execution would need >= 35ms + 2 latency hops (40ms+).
    if (seconds_since(start) < 0.055) ++hidden;
  });
  EXPECT_EQ(hidden.load(), n);
}

}  // namespace
}  // namespace cannikin::comm
