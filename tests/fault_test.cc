// Fault-tolerance tests: comm timeouts and abort (the NCCL-watchdog
// protocol of the in-process process group), the deterministic
// FaultInjector, and failure-driven elastic recovery. The headline
// property: a rank that dies mid-collective converts a would-be
// deadlock into an attributable error on every surviving rank within
// the configured deadline.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "comm/bucket.h"
#include "comm/collectives.h"
#include "comm/process_group.h"
#include "dnn/data.h"
#include "dnn/model.h"
#include "dnn/parallel_trainer.h"
#include "experiments/harness.h"
#include "sched/elastic_job.h"
#include "sched/fault_recovery.h"
#include "sim/cluster_factory.h"
#include "sim/faults.h"
#include "workloads/registry.h"

namespace cannikin {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ------------------------------------------------ comm timeouts / abort

TEST(CommFault, DeadRankMidAllReduceTimesOutEveryPeer) {
  // The acceptance property: rank 2 of 4 exits before the collective;
  // every other rank must raise CommTimeoutError within the deadline
  // instead of hanging forever in the ring.
  const int n = 4;
  const double timeout = 0.2;
  comm::ProcessGroup group(n, timeout);

  std::atomic<int> timed_out{0};
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (int rank = 0; rank < n; ++rank) {
    threads.emplace_back([&, rank] {
      if (rank == 2) return;  // dies before entering the collective
      comm::Communicator comm = group.communicator(rank);
      std::vector<double> data(16, 1.0);
      try {
        comm::ring_all_reduce(comm, std::span<double>(data), 5);
      } catch (const comm::CommTimeoutError&) {
        ++timed_out;
      } catch (const comm::CommAbortedError&) {
        ++timed_out;  // a peer noticed first and aborted under us
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(timed_out.load(), n - 1);
  // Bounded unwind: one timeout (plus scheduling slack), not a hang.
  EXPECT_LT(seconds_since(start), 10 * timeout);
}

TEST(CommFault, RecvTimesOutWithDescriptiveError) {
  comm::ProcessGroup group(2, 0.05);
  comm::Communicator comm = group.communicator(0);
  try {
    comm.recv(1, 42);
    FAIL() << "recv should have timed out";
  } catch (const comm::CommTimeoutError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("tag=42"), std::string::npos);
  }
}

TEST(CommFault, BarrierTimesOutWhenARankNeverArrives) {
  comm::ProcessGroup group(2, 0.05);
  comm::Communicator comm = group.communicator(0);
  const auto start = Clock::now();
  EXPECT_THROW(comm.barrier(), comm::CommTimeoutError);
  EXPECT_LT(seconds_since(start), 1.0);
}

TEST(CommFault, AbortWakesBlockedRecvAndBarrier) {
  // No timeout configured: only abort() can release the blocked ranks.
  comm::ProcessGroup group(3);
  std::atomic<int> aborted{0};
  std::thread blocked_recv([&] {
    comm::Communicator comm = group.communicator(0);
    try {
      comm.recv(1, 7);
    } catch (const comm::CommAbortedError&) {
      ++aborted;
    }
  });
  std::thread blocked_barrier([&] {
    comm::Communicator comm = group.communicator(1);
    try {
      comm.barrier();
    } catch (const comm::CommAbortedError&) {
      ++aborted;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  group.abort();
  blocked_recv.join();
  blocked_barrier.join();
  EXPECT_EQ(aborted.load(), 2);
}

TEST(CommFault, AbortPoisonsSubsequentCalls) {
  comm::ProcessGroup group(2);
  group.abort();
  EXPECT_TRUE(group.aborted());
  comm::Communicator comm = group.communicator(0);
  EXPECT_THROW(comm.send(1, 1, {1.0}), comm::CommAbortedError);
  EXPECT_THROW(comm.recv(1, 1), comm::CommAbortedError);
  EXPECT_THROW(comm.barrier(), comm::CommAbortedError);

  // Collectives fail uniformly, even on paths that move no data.
  comm::ProcessGroup solo(1);
  solo.abort();
  comm::Communicator alone = solo.communicator(0);
  std::vector<double> data(4, 1.0);
  EXPECT_THROW(comm::ring_all_reduce(alone, std::span<double>(data), 1),
               comm::CommAbortedError);
  EXPECT_THROW(comm::broadcast(alone, data, 0, 2), comm::CommAbortedError);
  EXPECT_THROW(comm::all_gather(alone, data, 3), comm::CommAbortedError);
  const auto buckets = comm::make_buckets(data.size(), 2);
  EXPECT_THROW(comm::bucketized_weighted_all_reduce(
                   alone, std::span<double>(data), 1.0, buckets, 4),
               comm::CommAbortedError);
}

TEST(CommFault, TimeoutDoesNotFireOnHealthyTraffic) {
  const int n = 4;
  comm::ProcessGroup group(n, 5.0);
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int rank = 0; rank < n; ++rank) {
    threads.emplace_back([&, rank] {
      comm::Communicator comm = group.communicator(rank);
      std::vector<double> data{static_cast<double>(rank)};
      try {
        comm::ring_all_reduce(comm, std::span<double>(data), 9);
        comm.barrier();
        if (data[0] != 6.0) failed = true;
      } catch (const comm::CommError&) {
        failed = true;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
}

TEST(CommFault, DeadRankMidBucketFailsPendingWorksWithinDeadline) {
  // The async-engine acceptance property: every surviving rank has a
  // full pipeline of bucket Works in flight when rank 2 dies. The first
  // bucket op times out, the reducer aborts the group, and *all*
  // pending Works -- in flight and still queued -- fail within roughly
  // one deadline instead of each serving its own timeout.
  const int n = 4;
  const double timeout = 0.2;
  const std::size_t elems = 64;
  comm::ProcessGroup group(n, timeout);
  const auto buckets = comm::make_buckets(elems, 8);  // 8 buckets queued

  std::atomic<int> unwound{0};
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (int rank = 0; rank < n; ++rank) {
    threads.emplace_back([&, rank] {
      if (rank == 2) return;  // dies before contributing any bucket
      comm::Communicator comm = group.communicator(rank);
      std::vector<double> grad(elems, 1.0);
      const std::uint64_t base = comm.tags().block(
          comm::CollectiveKind::kBucketAllReduce, buckets.size());
      comm::BucketReducer reducer(comm, std::span<double>(grad), 0.25,
                                  buckets, base);
      reducer.mark_ready(0, elems);  // all 8 Works now pending
      try {
        reducer.finish();
      } catch (const comm::CommError&) {
        ++unwound;
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(unwound.load(), n - 1);
  // One timeout + slack, NOT 8 serial timeouts: the abort propagated
  // through the pending-Work queue.
  EXPECT_LT(seconds_since(start), 4 * timeout);
  EXPECT_TRUE(group.aborted());
}

// ----------------------------------------------- trainer watchdog path

TEST(ParallelTrainerFault, InjectedWorkerDeathAbortsInsteadOfHanging) {
  const auto dataset = dnn::make_gaussian_mixture(600, 10, 3, 3.5, 42);
  dnn::TrainerOptions options;
  options.num_nodes = 3;
  options.lr_scaling = dnn::LrScaling::kNone;
  options.initial_total_batch = 60;
  options.seed = 7;
  options.comm_timeout_seconds = 0.2;
  options.inject_failure_rank = 1;
  options.inject_failure_step = 2;
  dnn::ParallelTrainer trainer(
      &dataset, [] { return dnn::make_mlp(10, 16, 1, 3); }, options);

  const auto params_before = trainer.params();
  const auto start = Clock::now();
  EXPECT_THROW(trainer.run_epoch({30, 20, 10}), comm::CommAbortedError);
  EXPECT_LT(seconds_since(start), 5.0);
  // The aborted epoch is discarded: parameters stay at the last
  // consistent snapshot every surviving replica could restart from.
  EXPECT_EQ(trainer.params(), params_before);
}

// -------------------------------------------------------- FaultInjector

TEST(FaultInjector, ValidatesEvents) {
  sim::FaultInjector injector;
  EXPECT_THROW(injector.schedule({-1, sim::FaultKind::kNodeCrash, 0}),
               std::invalid_argument);
  EXPECT_THROW(injector.schedule({0, sim::FaultKind::kNodeCrash, -1}),
               std::invalid_argument);
  EXPECT_THROW(
      injector.schedule({0, sim::FaultKind::kTransientStraggler, 0, 0.0}),
      std::invalid_argument);
  EXPECT_THROW(
      injector.schedule(
          {0, sim::FaultKind::kPermanentSlowdown, 0, 0.5, /*duration=*/3}),
      std::invalid_argument);
  EXPECT_TRUE(injector.empty());
}

TEST(FaultInjector, TransientEventsExpandIntoOnsetAndRecovery) {
  sim::FaultInjector injector;
  injector.schedule({3, sim::FaultKind::kTransientStraggler, 1, 0.5, 4});

  ASSERT_EQ(injector.events().size(), 2u);
  const auto onset = injector.due(3);
  ASSERT_EQ(onset.size(), 1u);
  EXPECT_DOUBLE_EQ(onset[0].severity, 0.5);
  const auto recovery = injector.due(7);
  ASSERT_EQ(recovery.size(), 1u);
  EXPECT_DOUBLE_EQ(recovery[0].severity, 1.0);
  EXPECT_TRUE(injector.due(5).empty());
}

TEST(FaultInjector, AppliesContentionAndNetworkEventsToClusterJob) {
  sim::ClusterJob job(sim::cluster_a(), workloads::by_name("cifar10").profile,
                      sim::NoiseConfig::none(), 1);
  const double t_last_before = job.comm().t_last;

  sim::FaultInjector injector;
  injector.schedule({2, sim::FaultKind::kPermanentSlowdown, 0, 0.5});
  injector.schedule({2, sim::FaultKind::kNetworkDegrade, -1, 0.25, 3});
  injector.schedule({4, sim::FaultKind::kNodeCrash, 1});

  EXPECT_TRUE(injector.apply_due(0, job).empty());
  EXPECT_DOUBLE_EQ(job.contention(0), 1.0);

  EXPECT_TRUE(injector.apply_due(2, job).empty());
  EXPECT_DOUBLE_EQ(job.contention(0), 0.5);
  EXPECT_DOUBLE_EQ(job.network_scale(), 0.25);
  EXPECT_GT(job.comm().t_last, t_last_before);  // slower network

  const auto crashes = injector.apply_due(4, job);
  ASSERT_EQ(crashes.size(), 1u);  // crash returned, not applied
  EXPECT_EQ(crashes[0].node, 1);

  EXPECT_TRUE(injector.apply_due(5, job).empty());
  EXPECT_DOUBLE_EQ(job.network_scale(), 1.0);  // auto-recovery at 2+3
  EXPECT_NEAR(job.comm().t_last, t_last_before, 1e-12);
}

TEST(FaultInjector, RandomScenarioIsDeterministicInTheSeed) {
  const auto a = sim::FaultInjector::random_scenario(11, 8, 40, 6);
  const auto b = sim::FaultInjector::random_scenario(11, 8, 40, 6);
  const auto c = sim::FaultInjector::random_scenario(12, 8, 40, 6);

  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].epoch, b.events()[i].epoch);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
    EXPECT_DOUBLE_EQ(a.events()[i].severity, b.events()[i].severity);
  }
  EXPECT_GE(a.events().size(), 6u);
  // Different seed, different schedule (holds for these seeds).
  bool differs = a.events().size() != c.events().size();
  for (std::size_t i = 0; !differs && i < a.events().size(); ++i) {
    differs = a.events()[i].epoch != c.events()[i].epoch ||
              a.events()[i].node != c.events()[i].node;
  }
  EXPECT_TRUE(differs);
}

TEST(ClusterJobNetwork, SetNetworkScaleRescalesCommSchedule) {
  sim::ClusterJob job(sim::cluster_b(), workloads::by_name("cifar10").profile,
                      sim::NoiseConfig::none(), 1);
  const double total_before = job.comm().total();
  job.set_network_scale(0.5);
  EXPECT_GT(job.comm().total(), total_before);
  job.set_network_scale(1.0);
  EXPECT_NEAR(job.comm().total(), total_before, 1e-12);
  EXPECT_THROW(job.set_network_scale(0.0), std::invalid_argument);
}

// -------------------------------------- elastic failure-driven recovery

TEST(ElasticRecovery, CrashShrinksAllocationAndWarmStarts) {
  const auto& workload = workloads::by_name("cifar10");
  sched::ElasticCannikinJob job(&workload, sim::cluster_b(),
                                sim::NoiseConfig{}, 3);
  job.set_allocation({0, 4, 8, 9});
  for (int epoch = 0; epoch < 6; ++epoch) job.run_epoch();

  const double progress_before = job.progress_fraction();
  const auto& report = job.apply_fault(
      {/*epoch=*/6, sim::FaultKind::kNodeCrash, /*node=*/4});

  EXPECT_EQ(job.allocation(), (std::vector<int>{0, 8, 9}));
  EXPECT_EQ(job.crash_recoveries(), 1);
  // Survivor types (a100, rtx) were learned before the crash: the
  // controller warm-starts instead of re-paying bootstrap epochs.
  EXPECT_TRUE(report.warm);
  EXPECT_GT(report.overhead_seconds, 0.0);

  const double with_recovery = job.run_epoch();
  EXPECT_GE(with_recovery, report.overhead_seconds);
  EXPECT_GT(job.progress_fraction(), progress_before);
  // The overhead is charged exactly once.
  EXPECT_LT(job.run_epoch(), with_recovery);
}

TEST(ElasticRecovery, LastNodeCrashThrows) {
  const auto& workload = workloads::by_name("cifar10");
  sched::ElasticCannikinJob job(&workload, sim::cluster_b(),
                                sim::NoiseConfig{}, 3);
  job.set_allocation({0});
  EXPECT_THROW(job.apply_fault({0, sim::FaultKind::kNodeCrash, 0}),
               std::runtime_error);
}

TEST(ElasticRecovery, CrashOfUnallocatedNodeIsIgnored) {
  const auto& workload = workloads::by_name("cifar10");
  sched::ElasticCannikinJob job(&workload, sim::cluster_b(),
                                sim::NoiseConfig{}, 3);
  job.set_allocation({0, 4});
  job.apply_fault({0, sim::FaultKind::kNodeCrash, 9});
  EXPECT_EQ(job.crash_recoveries(), 0);
  EXPECT_EQ(job.allocation(), (std::vector<int>{0, 4}));
}

TEST(ElasticRecovery, SlowdownPersistsAcrossReallocation) {
  const auto& workload = workloads::by_name("cifar10");
  sched::ElasticCannikinJob job(&workload, sim::cluster_b(),
                                sim::NoiseConfig{}, 3);
  job.set_allocation({0, 4});
  job.apply_fault({0, sim::FaultKind::kPermanentSlowdown, 4, 0.5});
  job.apply_fault({0, sim::FaultKind::kNetworkDegrade, -1, 0.5});
  // Node 4 leaves and comes back: it is still slow, and the network is
  // still degraded -- faults stick to the hardware, not the allocation.
  job.set_allocation({0, 8});
  job.set_allocation({0, 4, 8});
  EXPECT_EQ(job.crash_recoveries(), 0);
  for (int epoch = 0; epoch < 2; ++epoch) job.run_epoch();
  EXPECT_GT(job.progress_fraction(), 0.0);
}

TEST(ElasticRecovery, RunWithFaultsEmitsRecoveryTrace) {
  const auto& workload = workloads::by_name("cifar10");
  sched::ElasticCannikinJob job(&workload, sim::cluster_b(),
                                sim::NoiseConfig{}, 3);
  job.set_allocation({0, 4, 8, 9});

  sim::FaultInjector injector;
  injector.schedule({4, sim::FaultKind::kNodeCrash, 4});
  injector.schedule({8, sim::FaultKind::kTransientStraggler, 0, 0.5, 4});

  const auto trace = sched::run_with_faults(job, injector, 300);
  EXPECT_TRUE(trace.reached_target);
  EXPECT_EQ(trace.crash_recoveries, 1);
  EXPECT_EQ(trace.warm_crash_recoveries, 1);
  EXPECT_GT(trace.drift_resets, 0);
  EXPECT_GT(trace.recovery_overhead_seconds, 0.0);

  ASSERT_GE(trace.rows.size(), 9u);
  EXPECT_EQ(trace.rows[3].num_nodes, 4);
  EXPECT_EQ(trace.rows[4].num_nodes, 3);
  EXPECT_FALSE(trace.rows[4].events.empty());

  const auto metrics = sched::recovery_metrics(trace);
  ASSERT_EQ(metrics.size(), 2u);  // crash + straggler onset
  EXPECT_TRUE(metrics[0].recovered);
  EXPECT_GE(metrics[0].epochs_to_recover, 0);
}

// ------------------------------------------------ harness fault support

TEST(HarnessFaults, StragglerEventsFlowThroughRunToTarget) {
  const auto& workload = workloads::by_name("cifar10");
  sim::ClusterJob job(sim::cluster_a(), workload.profile, sim::NoiseConfig{},
                      5);
  experiments::CannikinSystem system(
      job.size(), {128, 128, 128}, workload.b0, workload.max_total_batch);

  sim::FaultInjector injector;
  injector.schedule({3, sim::FaultKind::kTransientStraggler, 0, 0.5, 3});

  experiments::HarnessOptions options;
  options.max_epochs = 12;
  const auto trace = experiments::run_to_target_with_faults(
      job, workload, system, injector, options);

  ASSERT_GE(trace.epochs.size(), 7u);
  EXPECT_TRUE(trace.epochs[2].fault_note.empty());
  EXPECT_FALSE(trace.epochs[3].fault_note.empty());
  EXPECT_FALSE(trace.epochs[6].fault_note.empty());  // recovery note
  // The straggler epoch really ran slower than its neighbours.
  EXPECT_GT(trace.epochs[3].avg_batch_time,
            1.2 * trace.epochs[2].avg_batch_time);
}

// ------------------------------------ partition / flaky / corrupt kinds

TEST(FaultInjector, ValidatesPartitionAndFlakyEvents) {
  sim::FaultInjector injector;
  // A partition needs its minority-side node list...
  EXPECT_THROW(injector.schedule({0, sim::FaultKind::kNetworkPartition, -1,
                                  0.5, /*duration=*/2}),
               std::invalid_argument);
  // ...and a scheduled heal; a never-healing partition is a crash.
  EXPECT_THROW(
      injector.schedule({0, sim::FaultKind::kNetworkPartition, -1, 0.5,
                         /*duration=*/0, /*partition=*/{1, 2}}),
      std::invalid_argument);
  // Only kNetworkPartition carries a partition list.
  EXPECT_THROW(injector.schedule({0, sim::FaultKind::kNodeCrash, 1, 0.5,
                                  /*duration=*/0, /*partition=*/{1}}),
               std::invalid_argument);
  // Flaky severity is a drop probability: must lie in (0, 1].
  EXPECT_THROW(
      injector.schedule({0, sim::FaultKind::kLinkFlaky, -1, 1.5,
                         /*duration=*/2}),
      std::invalid_argument);
  EXPECT_TRUE(injector.empty());
}

TEST(FaultInjector, KindNamesCoverNewKindsAndUnknownFallsBack) {
  EXPECT_STREQ(sim::fault_kind_name(sim::FaultKind::kNetworkPartition),
               "network-partition");
  EXPECT_STREQ(sim::fault_kind_name(sim::FaultKind::kLinkFlaky),
               "link-flaky");
  EXPECT_STREQ(sim::fault_kind_name(sim::FaultKind::kCheckpointCorrupt),
               "checkpoint-corrupt");
  // Out-of-range values (corrupted storage, kinds from a newer binary)
  // must not crash the diagnostic path.
  EXPECT_STREQ(sim::fault_kind_name(static_cast<sim::FaultKind>(999)),
               "unknown");
}

TEST(FaultInjector, PartitionExpandsIntoOnsetAndHeal) {
  sim::FaultInjector injector;
  injector.schedule({3, sim::FaultKind::kNetworkPartition, -1, 0.5,
                     /*duration=*/2, /*partition=*/{8, 9}});

  ASSERT_EQ(injector.events().size(), 2u);
  const auto onset = injector.due(3);
  ASSERT_EQ(onset.size(), 1u);
  EXPECT_LT(onset[0].severity, 1.0);
  EXPECT_EQ(onset[0].partition, (std::vector<int>{8, 9}));
  const auto heal = injector.due(5);
  ASSERT_EQ(heal.size(), 1u);
  EXPECT_DOUBLE_EQ(heal[0].severity, 1.0);
  // The heal marker keeps the member list so the elastic runtime knows
  // which side to re-admit.
  EXPECT_EQ(heal[0].partition, (std::vector<int>{8, 9}));
}

TEST(FaultInjector, FlakyLinksRecoverToZeroDropProbability) {
  sim::FaultInjector injector;
  injector.schedule({2, sim::FaultKind::kLinkFlaky, -1, 0.25,
                     /*duration=*/3});
  const auto recovery = injector.due(5);
  ASSERT_EQ(recovery.size(), 1u);
  // Severity is a drop probability here, so the auto-generated recovery
  // marker is 0.0 (healthy links) -- the usual 1.0 would read as "drop
  // every message".
  EXPECT_DOUBLE_EQ(recovery[0].severity, 0.0);
}

TEST(ElasticRecovery, PartitionShrinksThenHealReadmitsWarm) {
  const auto& workload = workloads::by_name("cifar10");
  sched::ElasticCannikinJob job(&workload, sim::cluster_b(),
                                sim::NoiseConfig{}, 3);
  job.set_allocation({0, 4, 8, 9});
  for (int epoch = 0; epoch < 6; ++epoch) job.run_epoch();

  // Onset: the quorum excluded {8, 9}; the survivors keep training on
  // their rescaled gradient share -- an elastic shrink, not a restart.
  const auto& shrink = job.apply_fault(
      {6, sim::FaultKind::kNetworkPartition, -1, 0.5, 0, {8, 9}});
  EXPECT_EQ(job.allocation(), (std::vector<int>{0, 4}));
  EXPECT_EQ(job.partition_shrinks(), 1);
  EXPECT_EQ(job.partitioned_nodes(), (std::vector<int>{8, 9}));
  EXPECT_GT(shrink.overhead_seconds, 0.0);
  EXPECT_GT(job.run_epoch(), 0.0);

  // Heal: the cut-off side re-joins warm (its types were learned
  // before the cut, so no bootstrap epochs are re-paid).
  const auto& heal = job.apply_fault(
      {8, sim::FaultKind::kNetworkPartition, -1, 1.0, 0, {8, 9}});
  EXPECT_EQ(job.allocation().size(), 4u);
  EXPECT_TRUE(job.partitioned_nodes().empty());
  EXPECT_EQ(job.node_rejoins(), 2);
  EXPECT_TRUE(heal.warm);
}

TEST(ElasticRecovery, FlakyLinksSlowEpochsUntilRecovery) {
  const auto& workload = workloads::by_name("cifar10");
  sched::ElasticCannikinJob job(&workload, sim::cluster_b(),
                                sim::NoiseConfig{}, 3);
  job.set_allocation({0, 4, 8, 9});
  for (int epoch = 0; epoch < 6; ++epoch) job.run_epoch();

  const double healthy = job.run_epoch();
  // Drop probability 0.5: every message costs an expected two
  // transmissions, so effective network throughput halves.
  job.apply_fault({7, sim::FaultKind::kLinkFlaky, -1, 0.5, 0, {}});
  const double flaky = job.run_epoch();
  EXPECT_GT(flaky, healthy);

  // The auto-recovery marker (severity 0) restores healthy links.
  job.apply_fault({8, sim::FaultKind::kLinkFlaky, -1, 0.0, 0, {}});
  EXPECT_LT(job.run_epoch(), flaky);
}

}  // namespace
}  // namespace cannikin
