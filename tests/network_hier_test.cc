// Tests for the hierarchical (BlueConnect-style) all-reduce model and
// the grouped cluster-B factory.
#include <gtest/gtest.h>

#include "sim/cluster.h"
#include "sim/cluster_factory.h"
#include "sim/network.h"
#include "workloads/registry.h"

namespace cannikin::sim {
namespace {

TEST(HierarchicalAllReduce, AllSingletonGroupsEqualsFlatRing) {
  NetworkModel net;
  const std::vector<int> singletons{0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(net.hierarchical_all_reduce_time(1e8, singletons),
                   net.all_reduce_time(1e8, 5));
}

TEST(HierarchicalAllReduce, FasterThanFlatWhenServersShareGpus) {
  NetworkModel net;  // intra 25 GB/s vs inter 1.25 GB/s
  const std::vector<int> grouped{0, 0, 0, 0, 1, 1, 1, 1};
  const double hier = net.hierarchical_all_reduce_time(4e8, grouped);
  const double flat = net.all_reduce_time(4e8, 8);
  EXPECT_LT(hier, flat);
  // Dominant term: inter-server traffic shrinks by the group size g=4.
  EXPECT_LT(hier, 0.5 * flat);
}

TEST(HierarchicalAllReduce, SingleServerUsesOnlyIntraLinks) {
  NetworkModel net;
  const std::vector<int> one_server{0, 0, 0, 0};
  const double t = net.hierarchical_all_reduce_time(1e8, one_server);
  const double expected =
      2.0 * 3 / 4.0 * 1e8 / net.intra_bandwidth_bytes_per_s +
      2.0 * 3 * net.latency_s;
  EXPECT_NEAR(t, expected, 1e-12);
}

TEST(HierarchicalAllReduce, EdgeCases) {
  NetworkModel net;
  EXPECT_DOUBLE_EQ(net.hierarchical_all_reduce_time(1e8, {7}), 0.0);
  EXPECT_THROW(net.hierarchical_all_reduce_time(1e8, {}),
               std::invalid_argument);
}

TEST(HierarchicalCommSchedule, TotalMatchesHierarchicalTime) {
  NetworkModel net;
  const std::vector<int> groups{0, 0, 1, 1, 2};
  const auto schedule = make_comm_schedule(net, 104e6, 25e6, groups);
  EXPECT_EQ(schedule.num_buckets, 5);
  EXPECT_NEAR(schedule.total(),
              net.hierarchical_all_reduce_time(104e6, groups), 1e-12);
}

TEST(ClusterBGrouped, TopologyMatchesTable4Servers) {
  const auto spec = cluster_b_grouped();
  ASSERT_EQ(spec.comm_groups.size(), 16u);
  // A100s share server 0, V100s server 1, each RTX its own.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(spec.comm_groups[i], 0);
  for (int i = 4; i < 8; ++i) EXPECT_EQ(spec.comm_groups[i], 1);
  for (int i = 8; i < 16; ++i) EXPECT_EQ(spec.comm_groups[i], i - 6);
}

TEST(ClusterBGrouped, JobSeesShorterCommTimes) {
  const auto& profile = workloads::by_name("squad").profile;
  ClusterJob flat(cluster_b(), profile, NoiseConfig::none(), 1);
  ClusterJob hier(cluster_b_grouped(), profile, NoiseConfig::none(), 1);
  EXPECT_LT(hier.comm().total(), flat.comm().total());
  // Same bucket structure; only the times change.
  EXPECT_EQ(hier.comm().num_buckets, flat.comm().num_buckets);
}

TEST(ClusterJob, CommGroupsSizeValidated) {
  ClusterSpec spec = cluster_a();
  spec.comm_groups = {0, 1};  // three nodes, two entries
  EXPECT_THROW(ClusterJob(spec, workloads::by_name("cifar10").profile,
                          NoiseConfig::none(), 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace cannikin::sim
