// Tests for the end-to-end AdaptiveTrainer: the Cannikin loop on real
// threads with measured timings and throttle-emulated heterogeneity.
#include <gtest/gtest.h>

#include <cmath>

#include "dnn/adaptive_trainer.h"
#include "dnn/zoo.h"

// TSan instrumentation slows threads down by a large, *nonuniform*
// factor, so assertions about learned wall-clock proportions are
// meaningless under it (the trainer still runs for race coverage).
#if defined(__SANITIZE_THREAD__)
#define CANNIKIN_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CANNIKIN_TSAN_BUILD 1
#endif
#endif

namespace cannikin::dnn {
namespace {

AdaptiveTrainerOptions base_options() {
  AdaptiveTrainerOptions options;
  options.num_nodes = 3;
  options.throttles = {1, 2, 4};  // a fast, a medium and a slow "GPU"
  options.initial_total_batch = 48;
  options.max_total_batch = 192;
  options.base_lr = 0.04;
  options.seed = 11;
  return options;
}

TEST(AdaptiveTrainer, LearnsThrottlesAndSkewsLocalBatches) {
  const auto dataset = make_gaussian_mixture(3000, 16, 4, 2.5, 5);
  AdaptiveTrainer trainer(
      &dataset, [] { return make_mlp(16, 24, 1, 4); }, base_options());

  AdaptiveEpochReport report;
  for (int epoch = 0; epoch < 5; ++epoch) {
    report = trainer.run_epoch();
  }
  ASSERT_TRUE(report.planned_from_model);
#if !defined(CANNIKIN_TSAN_BUILD)
  // Throttles 1:2:4 -> worker 0 must carry the largest local batch and
  // worker 2 the smallest, learned purely from measured wall clock.
  EXPECT_GT(report.local_batches[0], report.local_batches[1]);
  EXPECT_GT(report.local_batches[1], report.local_batches[2]);
  // The learned per-sample compute times should roughly reflect 1:2:4.
  const auto models = trainer.controller().learned_models();
  ASSERT_TRUE(models.has_value());
  const double r10 = ((*models)[1].q + (*models)[1].k) /
                     ((*models)[0].q + (*models)[0].k);
  const double r20 = ((*models)[2].q + (*models)[2].k) /
                     ((*models)[0].q + (*models)[0].k);
  EXPECT_NEAR(r10, 2.0, 0.9);
  EXPECT_NEAR(r20, 4.0, 1.8);
#endif
}

TEST(AdaptiveTrainer, TrainsToGoodAccuracyWhileAdapting) {
  const auto dataset = make_gaussian_mixture(3000, 16, 4, 3.0, 6);
  AdaptiveTrainer trainer(
      &dataset, [] { return make_mlp(16, 24, 1, 4); }, base_options());
  for (int epoch = 0; epoch < 8; ++epoch) trainer.run_epoch();
  EXPECT_GT(trainer.evaluate_accuracy(dataset), 0.85);
  EXPECT_GE(trainer.controller().current_gns(), 0.0);
}

TEST(AdaptiveTrainer, EpochReportsAreCoherent) {
  const auto dataset = make_gaussian_mixture(1200, 12, 3, 2.5, 7);
  AdaptiveTrainerOptions options = base_options();
  options.num_nodes = 2;
  options.throttles = {1, 2};
  AdaptiveTrainer trainer(
      &dataset, [] { return make_mlp(12, 16, 1, 3); }, options);
  for (int epoch = 0; epoch < 4; ++epoch) {
    const auto report = trainer.run_epoch();
    EXPECT_EQ(report.epoch, epoch);
    int sum = 0;
    for (int b : report.local_batches) sum += b;
    EXPECT_EQ(sum, report.total_batch);
    EXPECT_GT(report.epoch_seconds, 0.0);
    EXPECT_TRUE(std::isfinite(report.mean_loss));
  }
}

TEST(AdaptiveTrainer, Validation) {
  const auto dataset = make_gaussian_mixture(100, 8, 2, 2.0, 8);
  auto factory = [] { return make_mlp(8, 8, 1, 2); };
  AdaptiveTrainerOptions options = base_options();
  options.throttles = {1, 2};  // wrong size for 3 nodes
  EXPECT_THROW(AdaptiveTrainer(&dataset, factory, options),
               std::invalid_argument);
  options.throttles = {1, 0, 2};
  EXPECT_THROW(AdaptiveTrainer(&dataset, factory, options),
               std::invalid_argument);
  options = base_options();
  EXPECT_THROW(AdaptiveTrainer(nullptr, factory, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace cannikin::dnn
