// Cross-backend parity suite: every collective must produce bitwise
// identical tensors on the thread backend (real progress threads, wall
// clock) and the event backend (virtual ranks on the discrete-event
// scheduler), with the same TagAllocator sequences, the same abort /
// timeout unwinding, and -- in pure virtual mode -- a fully
// deterministic event trace. The scale tests at the bottom run the
// collectives at 1k-10k virtual ranks, which only the event backend
// can host.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "comm/bucket.h"
#include "comm/collectives.h"
#include "comm/event_backend.h"
#include "comm/process_group.h"
#include "comm/tag_allocator.h"
#include "comm/work.h"
#include "dnn/data.h"
#include "dnn/model.h"
#include "dnn/parallel_trainer.h"
#include "sim/network.h"

namespace cannikin::comm {
namespace {

ProcessGroup make_group(BackendKind kind, int size,
                        double timeout_seconds = 0.0) {
  GroupOptions options;
  options.size = size;
  options.timeout_seconds = timeout_seconds;
  options.backend = kind;
  return ProcessGroup(options);
}

// Deterministic per-rank test payload: distinct, non-round values so a
// reordering of additions would change the bits.
std::vector<double> rank_payload(int rank, std::size_t size) {
  std::vector<double> data(size);
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = std::sin(static_cast<double>(rank + 1) * 0.7 +
                       static_cast<double>(i) * 0.13) *
              (rank % 2 == 0 ? 1.0 : -3.7);
  }
  return data;
}

// Runs `fn(rank, comm)` on one thread per rank and joins. Works on both
// backends: on the event backend the blocked threads take turns pumping
// the scheduler.
template <typename Fn>
void run_ranks(ProcessGroup& group, Fn fn) {
  std::vector<std::thread> threads;
  for (int rank = 0; rank < group.size(); ++rank) {
    threads.emplace_back([&, rank] {
      Communicator comm = group.communicator(rank);
      fn(rank, comm);
    });
  }
  for (auto& t : threads) t.join();
}

// Submits one async collective per rank from this thread, then waits
// them all -- the single-threaded driving style both backends support.
struct CollectiveResult {
  std::vector<std::vector<double>> buffers;  ///< per-rank reduced data
  std::vector<std::vector<double>> gathered;
};

CollectiveResult run_collectives(BackendKind kind, int size,
                                 std::size_t elements) {
  ProcessGroup group = make_group(kind, size);
  CollectiveResult result;
  result.buffers.resize(static_cast<std::size_t>(size));
  result.gathered.resize(static_cast<std::size_t>(size));
  std::vector<double> scalars(static_cast<std::size_t>(size));
  std::vector<std::vector<double>> bcast(static_cast<std::size_t>(size));
  std::vector<std::vector<double>> tree(static_cast<std::size_t>(size));
  std::vector<WorkPtr> works;

  for (int rank = 0; rank < size; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    result.buffers[r] = rank_payload(rank, elements);
    tree[r] = rank_payload(rank, elements);
    bcast[r] = rank == 1 % size ? rank_payload(7, 5) : std::vector<double>{};
    scalars[r] = 0.25 * rank + 0.125;
  }
  for (int rank = 0; rank < size; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    Communicator comm = group.communicator(rank);
    TagAllocator& tags = comm.tags();
    works.push_back(async_weighted_ring_all_reduce(
        comm, result.buffers[r], 1.0 / (rank + 1),
        tags.next(CollectiveKind::kAllReduce)));
    works.push_back(async_tree_all_reduce(
        comm, tree[r], tags.next(CollectiveKind::kAllReduce)));
    works.push_back(async_broadcast(comm, &bcast[r], 1 % size,
                                    tags.next(CollectiveKind::kBroadcast)));
    works.push_back(async_all_reduce_scalar(
        comm, &scalars[r], tags.next(CollectiveKind::kScalar)));
  }
  // all_gather uses the per-rank payload *after* reduction would be
  // wrong -- gather the original contribution instead, sized unevenly.
  std::vector<std::vector<double>> contributions(
      static_cast<std::size_t>(size));
  for (int rank = 0; rank < size; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    contributions[r] = rank_payload(rank, 1 + static_cast<std::size_t>(rank));
    Communicator comm = group.communicator(rank);
    works.push_back(async_all_gather(
        comm, &contributions[r], &result.gathered[r],
        comm.tags().next(CollectiveKind::kAllGather)));
  }
  for (auto& work : works) work->wait();

  // Fold the remaining outputs into `buffers` so the caller compares
  // one structure: [reduced | tree | bcast | scalar].
  for (int rank = 0; rank < size; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    auto& buffer = result.buffers[r];
    buffer.insert(buffer.end(), tree[r].begin(), tree[r].end());
    buffer.insert(buffer.end(), bcast[r].begin(), bcast[r].end());
    buffer.push_back(scalars[r]);
  }
  return result;
}

TEST(BackendParity, CollectivesAreBitwiseIdenticalAcrossBackends) {
  for (const int size : {1, 2, 3, 5, 8}) {
    // 23 elements: not divisible by any group size, so ring segments
    // are uneven and exercise make_segments parity.
    const CollectiveResult threaded =
        run_collectives(BackendKind::kThread, size, 23);
    const CollectiveResult event =
        run_collectives(BackendKind::kEvent, size, 23);
    for (int rank = 0; rank < size; ++rank) {
      const auto r = static_cast<std::size_t>(rank);
      ASSERT_EQ(threaded.buffers[r].size(), event.buffers[r].size())
          << "size=" << size << " rank=" << rank;
      for (std::size_t i = 0; i < threaded.buffers[r].size(); ++i) {
        ASSERT_EQ(threaded.buffers[r][i], event.buffers[r][i])
            << "size=" << size << " rank=" << rank << " element=" << i;
      }
      ASSERT_EQ(threaded.gathered[r], event.gathered[r])
          << "size=" << size << " rank=" << rank;
    }
  }
}

TEST(BackendParity, TagSequencesMatchAcrossBackends) {
  // Tags come from the backend-independent per-rank TagAllocator, so
  // running the same collective program must allocate the same wire
  // tags on both backends.
  ProcessGroup threaded = make_group(BackendKind::kThread, 2);
  ProcessGroup event = make_group(BackendKind::kEvent, 2);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(threaded.tags(0).next(CollectiveKind::kBucketAllReduce),
              event.tags(0).next(CollectiveKind::kBucketAllReduce));
    EXPECT_EQ(threaded.tags(1).block(CollectiveKind::kScalar, 3),
              event.tags(1).block(CollectiveKind::kScalar, 3));
  }
}

TEST(BackendParity, BucketReducerMatchesAcrossBackends) {
  const std::size_t elements = 37;
  const auto buckets = make_buckets(elements, 10);
  std::vector<std::vector<double>> results[2];
  const BackendKind kinds[] = {BackendKind::kThread, BackendKind::kEvent};
  for (int which = 0; which < 2; ++which) {
    ProcessGroup group = make_group(kinds[which], 3);
    auto& grads = results[which];
    grads.resize(3);
    for (int rank = 0; rank < 3; ++rank) {
      grads[static_cast<std::size_t>(rank)] = rank_payload(rank, elements);
    }
    run_ranks(group, [&](int rank, Communicator& comm) {
      const std::uint64_t base = comm.tags().block(
          CollectiveKind::kBucketAllReduce, buckets.size());
      BucketReducer reducer(comm, grads[static_cast<std::size_t>(rank)],
                            1.0 / (rank + 2), buckets, base);
      // Mark ranges out of order and across bucket boundaries.
      reducer.mark_ready(10, elements - 10);
      reducer.mark_ready(0, 10);
      const BucketReducer::Stats stats = reducer.finish();
      EXPECT_EQ(stats.num_buckets, buckets.size());
      EXPECT_GE(stats.total_comm_seconds, 0.0);
    });
  }
  for (int rank = 0; rank < 3; ++rank) {
    EXPECT_EQ(results[0][static_cast<std::size_t>(rank)],
              results[1][static_cast<std::size_t>(rank)])
        << "rank=" << rank;
  }
}

TEST(BackendParity, ParallelTrainerEpochsMatchBitwise) {
  // The full trainer -- bucketized weighted all-reduce, GNS scalar
  // reduces, parameter broadcast -- run for two epochs on each backend
  // must leave bitwise identical parameters.
  const auto dataset = dnn::make_gaussian_mixture(240, 10, 3, 3.5, 42);
  auto factory = [] { return dnn::make_mlp(10, 16, 1, 3); };
  std::vector<double> params[2];
  const BackendKind kinds[] = {BackendKind::kThread, BackendKind::kEvent};
  for (int which = 0; which < 2; ++which) {
    dnn::TrainerOptions options;
    options.num_nodes = 3;
    options.base_lr = 0.05;
    options.lr_scaling = dnn::LrScaling::kNone;
    options.initial_total_batch = 60;
    options.seed = 7;
    options.comm_backend = kinds[which];
    dnn::ParallelTrainer trainer(&dataset, factory, options);
    trainer.run_epoch({30, 20, 10});
    trainer.run_epoch({20, 20, 20});
    params[which] = trainer.params();
  }
  ASSERT_EQ(params[0].size(), params[1].size());
  for (std::size_t i = 0; i < params[0].size(); ++i) {
    ASSERT_EQ(params[0][i], params[1][i]) << "param " << i;
  }
}

TEST(BackendParity, KernelBackendsBitwiseIdenticalTraining) {
  // Deterministic-tier contract, end to end: two epochs of the full
  // trainer with the naive and the optimized kernel backend (single
  // intra-rank thread, arena on and off) must leave bitwise identical
  // parameters -- on both comm backends. Flipping the compute kernels
  // or the allocator must never change a training trajectory.
  const auto dataset = dnn::make_gaussian_mixture(240, 10, 3, 3.5, 42);
  auto factory = [] { return dnn::make_mlp(10, 16, 1, 3); };
  for (const BackendKind comm_kind :
       {BackendKind::kThread, BackendKind::kEvent}) {
    std::vector<std::vector<double>> params;
    struct KernelConfig {
      dnn::kernels::KernelKind kind;
      bool arena;
    };
    const KernelConfig configs[] = {
        {dnn::kernels::KernelKind::kNaive, false},
        {dnn::kernels::KernelKind::kNaive, true},
        {dnn::kernels::KernelKind::kOptimized, false},
        {dnn::kernels::KernelKind::kOptimized, true},
    };
    for (const KernelConfig& config : configs) {
      dnn::TrainerOptions options;
      options.num_nodes = 3;
      options.base_lr = 0.05;
      options.lr_scaling = dnn::LrScaling::kNone;
      options.initial_total_batch = 60;
      options.seed = 7;
      options.comm_backend = comm_kind;
      options.kernel_kind = config.kind;
      options.kernel_threads = 1;
      options.kernel_use_arena = config.arena;
      dnn::ParallelTrainer trainer(&dataset, factory, options);
      trainer.run_epoch({30, 20, 10});
      trainer.run_epoch({20, 20, 20});
      params.push_back(trainer.params());
    }
    for (std::size_t which = 1; which < params.size(); ++which) {
      ASSERT_EQ(params[which].size(), params[0].size());
      for (std::size_t i = 0; i < params[0].size(); ++i) {
        ASSERT_EQ(params[which][i], params[0][i])
            << "config " << which << " comm backend "
            << static_cast<int>(comm_kind) << " param " << i;
      }
    }
  }
}

// ------------------------------------------------------ fault semantics

TEST(EventBackend, AbortWakesBlockedRecvAndFailsPendingWork) {
  ProcessGroup group = make_group(BackendKind::kEvent, 2);
  Communicator comm0 = group.communicator(0);
  std::vector<double> data = {1.0, 2.0};
  // Rank 0's ring all-reduce can never finish: rank 1 never joins.
  WorkPtr work = async_ring_all_reduce(comm0, data, 42);
  std::thread aborter([&group] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    group.abort();
  });
  EXPECT_THROW(group.communicator(1).recv(0, 99), CommAbortedError);
  aborter.join();
  EXPECT_THROW(work->wait(), CommAbortedError);
  EXPECT_TRUE(group.aborted());
  EXPECT_THROW(comm0.send(1, 5, {1.0}), CommAbortedError);
}

TEST(EventBackend, GroupTimeoutSurfacesAsCommTimeoutError) {
  ProcessGroup group = make_group(BackendKind::kEvent, 2, /*timeout=*/0.05);
  Communicator comm0 = group.communicator(0);
  EXPECT_THROW(comm0.recv(1, 7), CommTimeoutError);
  std::vector<double> data = {1.0};
  WorkPtr work = async_ring_all_reduce(comm0, data, 9);
  EXPECT_THROW(work->wait(), CommTimeoutError);
}

TEST(EventBackend, BarrierTimesOutWhenARankNeverArrives) {
  ProcessGroup group = make_group(BackendKind::kEvent, 3, /*timeout=*/0.05);
  Communicator comm = group.communicator(0);
  EXPECT_THROW(comm.barrier(), CommTimeoutError);
}

TEST(EventBackend, InjectFaultStrandsPeersAndFailsTheDeadRank) {
  ProcessGroup group = make_group(BackendKind::kEvent, 4);
  EventBackend* backend = group.event_backend();
  ASSERT_NE(backend, nullptr);
  backend->inject_fault(2, 0.0);

  std::vector<std::vector<double>> data(4, std::vector<double>{1.0, 2.0});
  std::vector<WorkPtr> works;
  for (int rank = 0; rank < 4; ++rank) {
    works.push_back(async_ring_all_reduce(
        group.communicator(rank), data[static_cast<std::size_t>(rank)], 3));
  }
  const EventStats stats = backend->run_until_idle();
  EXPECT_GT(stats.works_stranded, 0u);
  EXPECT_THROW(works[2]->wait(), CommError);
  // The survivors strand: rank 2 never forwards its ring segment.
  EXPECT_THROW(works[1]->wait(), CommTimeoutError);
  for (const auto& work : works) EXPECT_TRUE(work->is_completed());
}

// --------------------------------------------------- virtual-time model

TEST(EventBackend, VirtualClockFollowsTheFabricModel) {
  GroupOptions options;
  options.size = 2;
  options.backend = BackendKind::kEvent;
  options.fabric = sim::FabricModel::uniform_latency(0.001);
  ProcessGroup group(options);
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> b = {10.0, 20.0, 30.0, 40.0};
  WorkPtr wa = async_ring_all_reduce(group.communicator(0), a, 5);
  WorkPtr wb = async_ring_all_reduce(group.communicator(1), b, 5);
  wa->wait();
  wb->wait();
  // Two-rank ring: one reduce-scatter hop plus one all-gather hop, both
  // directions in parallel -- exactly two serialized message delays.
  EXPECT_DOUBLE_EQ(group.event_backend()->virtual_now(), 0.002);
  EXPECT_EQ(a, (std::vector<double>{11.0, 22.0, 33.0, 44.0}));
  EXPECT_EQ(a, b);
}

TEST(EventBackend, PureVirtualModeIsDeterministic) {
  // Same program, two fresh backends: identical tensors, identical
  // event count, identical virtual end time.
  auto run = [](std::vector<std::vector<double>>& out) {
    GroupOptions options;
    options.size = 16;
    options.backend = BackendKind::kEvent;
    options.fabric = sim::FabricModel::uniform_latency(1e-4);
    ProcessGroup group(options);
    EventBackend* backend = group.event_backend();
    out.assign(16, {});
    for (int rank = 0; rank < 16; ++rank) {
      out[static_cast<std::size_t>(rank)] = rank_payload(rank, 11);
      // Stagger the start times: rank r joins at r * 10us.
      backend->post(rank, rank * 1e-5, [&group, &out, rank] {
        async_ring_all_reduce(group.communicator(rank),
                              out[static_cast<std::size_t>(rank)], 1);
      });
    }
    const EventStats stats = backend->run_until_idle();
    EXPECT_EQ(stats.works_stranded, 0u);
    return std::pair<std::uint64_t, double>(stats.events_processed,
                                            stats.virtual_time);
  };
  std::vector<std::vector<double>> first, second;
  const auto stats1 = run(first);
  const auto stats2 = run(second);
  EXPECT_EQ(stats1.first, stats2.first);
  EXPECT_DOUBLE_EQ(stats1.second, stats2.second);
  EXPECT_EQ(first, second);
  for (int rank = 1; rank < 16; ++rank) {
    EXPECT_EQ(first[0], first[static_cast<std::size_t>(rank)]);
  }
}

// ------------------------------------------------------------ at scale

TEST(EventBackendScale, TreeAllReduceAtOneThousandRanks) {
  const int n = 1000;
  GroupOptions options;
  options.size = n;
  options.backend = BackendKind::kEvent;
  options.fabric = sim::FabricModel::uniform_latency(1e-6);
  ProcessGroup group(options);
  EventBackend* backend = group.event_backend();

  std::vector<std::vector<double>> data(static_cast<std::size_t>(n));
  std::vector<WorkPtr> works(static_cast<std::size_t>(n));
  for (int rank = 0; rank < n; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    data[r] = {static_cast<double>(rank), 1.0};
    backend->post(rank, 0.0, [&, rank, r] {
      works[r] = async_tree_all_reduce(group.communicator(rank), data[r], 1);
    });
  }
  const EventStats stats = backend->run_until_idle();
  EXPECT_EQ(stats.works_stranded, 0u);
  const double expected_sum = static_cast<double>(n) * (n - 1) / 2.0;
  for (const int rank : {0, 1, 499, 998, 999}) {
    const auto r = static_cast<std::size_t>(rank);
    ASSERT_TRUE(works[r] && works[r]->is_completed());
    EXPECT_DOUBLE_EQ(data[r][0], expected_sum) << "rank " << rank;
    EXPECT_DOUBLE_EQ(data[r][1], static_cast<double>(n)) << "rank " << rank;
  }
  // Binomial tree: the collective finishes in O(log n) rounds of the
  // 1us link, far under what a 1000-step ring would need.
  EXPECT_LT(stats.virtual_time, 1000 * 1e-6);
}

TEST(EventBackendScale, BroadcastAtTenThousandRanks) {
  const int n = 10000;
  GroupOptions options;
  options.size = n;
  options.backend = BackendKind::kEvent;
  ProcessGroup group(options);
  EventBackend* backend = group.event_backend();

  std::vector<std::vector<double>> data(static_cast<std::size_t>(n));
  data[0] = {3.25, -1.5, 7.75};
  for (int rank = 0; rank < n; ++rank) {
    backend->post(rank, 0.0, [&group, &data, rank] {
      async_broadcast(group.communicator(rank),
                      &data[static_cast<std::size_t>(rank)], 0, 2);
    });
  }
  const EventStats stats = backend->run_until_idle();
  EXPECT_EQ(stats.works_stranded, 0u);
  for (const int rank : {1, 5000, 9999}) {
    EXPECT_EQ(data[static_cast<std::size_t>(rank)], data[0])
        << "rank " << rank;
  }
  EXPECT_GE(stats.events_processed, static_cast<std::uint64_t>(n));
}

// --------------------------------------- partition tolerance parity

// Both backends share the same LinkFaults + RetryPolicy model, so a
// partition that heals inside the retry budget must be invisible to
// the result (identical tensors), and one that never heals must
// surface the identical typed error on every rank.
GroupOptions partition_options(BackendKind kind, double heal_seconds,
                               double timeout_seconds) {
  GroupOptions options;
  options.size = 4;
  options.timeout_seconds = timeout_seconds;
  options.backend = kind;
  options.fabric = sim::FabricModel::uniform_latency(1e-4);
  options.fabric.faults.enabled = true;
  options.fabric.faults.partition_side = {0, 0, 1, 1};
  options.fabric.faults.partition_start_seconds = 0.0;
  options.fabric.faults.partition_heal_seconds = heal_seconds;
  options.retry.max_attempts = 6;
  options.retry.backoff_initial_seconds = 0.005;
  options.retry.backoff_multiplier = 2.0;
  options.retry.jitter_fraction = 0.0;
  options.retry.seed = 5;
  return options;
}

TEST(BackendParity, PartitionThenHealYieldsIdenticalTensors) {
  // Heal at t=0.05: cross-cut frames sent at t~0 are retried at
  // +0.005/.015/.035/.075 and the post-heal attempt delivers. The
  // reduced tensors must match bitwise across backends and equal the
  // fault-free reference.
  std::vector<std::vector<double>> results[2];
  RetryStats stats[2];
  const BackendKind kinds[] = {BackendKind::kThread, BackendKind::kEvent};
  for (int which = 0; which < 2; ++which) {
    ProcessGroup group(partition_options(kinds[which], 0.05, 10.0));
    auto& data = results[which];
    data.resize(4);
    for (int rank = 0; rank < 4; ++rank) {
      data[static_cast<std::size_t>(rank)] = rank_payload(rank, 6);
    }
    run_ranks(group, [&data](int rank, Communicator comm) {
      async_tree_all_reduce(comm, data[static_cast<std::size_t>(rank)], 1)
          ->wait();
    });
    stats[which] = group.retry_stats();
  }

  ProcessGroup clean = make_group(BackendKind::kThread, 4);
  std::vector<std::vector<double>> reference(4);
  for (int rank = 0; rank < 4; ++rank) {
    reference[static_cast<std::size_t>(rank)] = rank_payload(rank, 6);
  }
  run_ranks(clean, [&reference](int rank, Communicator comm) {
    async_tree_all_reduce(comm, reference[static_cast<std::size_t>(rank)], 1)
        ->wait();
  });

  for (int rank = 0; rank < 4; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    EXPECT_EQ(results[0][r], results[1][r]) << "rank " << rank;
    EXPECT_EQ(results[0][r], reference[r]) << "rank " << rank;
  }
  // The partition really was crossed by retransmissions on both sides.
  EXPECT_GT(stats[0].resends, 0u);
  EXPECT_GT(stats[1].resends, 0u);
  EXPECT_EQ(stats[0].dropped, 0u);
  EXPECT_EQ(stats[1].dropped, 0u);
}

TEST(BackendParity, PartitionThatNeverHealsTimesOutIdentically) {
  // heal < 0: the cut outlives the retry budget, cross-cut messages
  // vanish, and every rank of both backends must surface the same
  // typed error -- CommTimeoutError after the group deadline.
  for (const BackendKind kind : {BackendKind::kThread, BackendKind::kEvent}) {
    ProcessGroup group(partition_options(kind, -1.0, 0.5));
    std::vector<std::string> errors(4, "none");
    std::vector<std::vector<double>> data(4);
    for (int rank = 0; rank < 4; ++rank) {
      data[static_cast<std::size_t>(rank)] = rank_payload(rank, 6);
    }
    run_ranks(group, [&](int rank, Communicator comm) {
      const auto r = static_cast<std::size_t>(rank);
      try {
        async_tree_all_reduce(comm, data[r], 1)->wait();
      } catch (const CommTimeoutError&) {
        errors[r] = "timeout";
      } catch (const CommError&) {
        errors[r] = "comm";
      }
    });
    for (int rank = 0; rank < 4; ++rank) {
      EXPECT_EQ(errors[static_cast<std::size_t>(rank)], "timeout")
          << "backend " << static_cast<int>(kind) << " rank " << rank;
    }
  }
}

}  // namespace
}  // namespace cannikin::comm
