// Checkpoint/restore subsystem: serialization round trips (save ->
// load must be bit-identical, including optimizer slots and the RNG
// stream), corruption rejection (any truncation or bit flip raises
// SerializeError instead of restoring garbage), and the CheckpointStore
// atomicity/retention protocol (a torn write never shadows the last
// good checkpoint).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "core/checkpoint.h"
#include "dnn/checkpoint.h"
#include "dnn/model.h"
#include "dnn/optimizer.h"
#include "sched/checkpoint.h"
#include "sched/elastic_job.h"
#include "sched/model_bank.h"
#include "sim/cluster.h"
#include "sim/cluster_factory.h"
#include "workloads/registry.h"

namespace {

using namespace cannikin;
namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& stem) {
    path_ = fs::temp_directory_path() /
            (stem + "-" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------- framing

TEST(Crc32, MatchesKnownVector) {
  // The standard IEEE 802.3 check value for "123456789".
  const std::string data = "123456789";
  EXPECT_EQ(common::crc32(data.data(), data.size()), 0xCBF43926u);
}

TEST(Framing, RoundTripsBody) {
  const std::string body = "hello checkpoint \x01\x02\x00 world";
  const std::string file = common::frame_checkpoint(body, 7);
  EXPECT_EQ(common::unframe_checkpoint(file, 7), body);
}

TEST(Framing, RejectsWrongVersion) {
  const std::string file = common::frame_checkpoint("body", 1);
  EXPECT_THROW(common::unframe_checkpoint(file, 2), common::SerializeError);
}

TEST(Framing, RejectsEveryTruncationPrefix) {
  const std::string file = common::frame_checkpoint("some payload bytes", 1);
  for (std::size_t len = 0; len < file.size(); ++len) {
    EXPECT_THROW(common::unframe_checkpoint(file.substr(0, len), 1),
                 common::SerializeError)
        << "prefix of length " << len << " must be rejected";
  }
}

TEST(Framing, RejectsEverySingleBitFlip) {
  const std::string file = common::frame_checkpoint("abcdefgh", 3);
  for (std::size_t i = 0; i < file.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = file;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
      EXPECT_THROW(common::unframe_checkpoint(corrupt, 3),
                   common::SerializeError)
          << "flip of bit " << bit << " at byte " << i << " must be rejected";
    }
  }
}

// ----------------------------------------------- trainer round trips

TEST(TrainerCheckpoint, TensorRoundTripIsBitIdentical) {
  dnn::Tensor t({2, 3, 4});
  Rng rng(11);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = rng.normal();

  common::BinaryWriter out;
  dnn::save_tensor(out, t);
  common::BinaryReader in(out.buffer());
  const dnn::Tensor back = dnn::load_tensor(in);

  EXPECT_TRUE(std::equal(back.shape().begin(), back.shape().end(),
                         t.shape().begin(), t.shape().end()));
  EXPECT_EQ(back.storage(), t.storage());  // exact, not approximate
}

TEST(TrainerCheckpoint, OptimizerSlotsRoundTrip) {
  dnn::Adam adam;
  std::vector<double> params(16, 0.5);
  std::vector<double> grads(16, 0.1);
  for (int i = 0; i < 3; ++i) adam.step(params, grads, 0.01);

  common::BinaryWriter out;
  dnn::save_optimizer(out, adam);

  dnn::Adam restored;
  common::BinaryReader in(out.buffer());
  dnn::load_optimizer(in, restored);

  // Same slots + step count => the next step is bit-identical.
  std::vector<double> a = params, b = params;
  adam.step(a, grads, 0.01);
  restored.step(b, grads, 0.01);
  EXPECT_EQ(a, b);
}

TEST(TrainerCheckpoint, OptimizerLoadRejectsWrongSlotCount) {
  dnn::Sgd sgd;
  std::vector<double> params(4, 1.0), grads(4, 0.1);
  sgd.step(params, grads, 0.1);
  common::BinaryWriter out;
  dnn::save_optimizer(out, sgd);  // 1 slot

  dnn::Adam adam;  // expects 2 slots
  common::BinaryReader in(out.buffer());
  EXPECT_THROW(dnn::load_optimizer(in, adam), common::SerializeError);
}

TEST(TrainerCheckpoint, RngStateContinuesExactStream) {
  Rng rng(123);
  for (int i = 0; i < 100; ++i) rng.uniform();
  const std::string state = rng.state();

  Rng restored(999);  // different seed: state must fully overwrite it
  restored.set_state(state);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(0, 1 << 30), restored.uniform_int(0, 1 << 30));
  }
}

TEST(TrainerCheckpoint, TrainerStateRoundTripsThroughBytes) {
  dnn::TrainerState state;
  state.params = {1.0, -2.5, 3.25};
  state.optimizer.slots = {{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}};
  state.optimizer.step_count = 17;
  Rng rng(5);
  rng.normal();
  state.rng_state = rng.state();
  state.cursor = {/*dataset_size=*/50000, /*shuffle_seed=*/99,
                  /*local_batches=*/{32, 64, 128}, /*next_batch=*/2};

  const std::string bytes = dnn::serialize_trainer_state(state);
  const dnn::TrainerState back = dnn::deserialize_trainer_state(bytes);

  EXPECT_EQ(back.params, state.params);
  EXPECT_EQ(back.optimizer.slots, state.optimizer.slots);
  EXPECT_EQ(back.optimizer.step_count, state.optimizer.step_count);
  EXPECT_EQ(back.rng_state, state.rng_state);
  EXPECT_EQ(back.cursor, state.cursor);

  // Truncation anywhere must be rejected, never partially applied.
  for (std::size_t len : {std::size_t{0}, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW(dnn::deserialize_trainer_state(bytes.substr(0, len)),
                 common::SerializeError);
  }
}

// The tentpole property: training interrupted by a checkpoint/restore
// cycle produces bit-identical parameters to uninterrupted training.
TEST(TrainerCheckpoint, ResumedTrainingIsBitIdenticalToUninterrupted) {
  const auto make_model = [] {
    dnn::Model model = dnn::make_mlp(8, 16, 1, 4);
    Rng init(7);
    model.init(init);
    return model;
  };
  const auto train_steps = [](dnn::Model& model, dnn::Optimizer& opt, Rng& rng,
                              int steps) {
    for (int step = 0; step < steps; ++step) {
      dnn::Tensor x({4, 8});
      for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.normal();
      model.zero_grads();
      dnn::Tensor y = model.forward(x);
      for (std::size_t i = 0; i < y.size(); ++i) y[i] = y[i] / y.size();
      model.backward(y);
      auto params = model.flat_params();
      const auto grads = model.flat_grads();
      opt.step(params, grads, 0.05);
      model.set_flat_params(params);
    }
  };

  // Reference: 10 uninterrupted steps.
  dnn::Model ref = make_model();
  dnn::Adam ref_opt;
  Rng ref_rng(42);
  train_steps(ref, ref_opt, ref_rng, 10);

  // Interrupted: 6 steps, checkpoint, restore into fresh objects, 4 more.
  dnn::Model a = make_model();
  dnn::Adam a_opt;
  Rng a_rng(42);
  train_steps(a, a_opt, a_rng, 6);

  dnn::TrainerState state;
  state.params = a.flat_params();
  state.optimizer = a_opt.state();
  state.rng_state = a_rng.state();
  const std::string bytes = dnn::serialize_trainer_state(state);

  dnn::Model b = make_model();
  dnn::Adam b_opt;
  Rng b_rng(1);  // wrong seed on purpose; restore must fix it
  const dnn::TrainerState restored = dnn::deserialize_trainer_state(bytes);
  b.set_flat_params(restored.params);
  b_opt.set_state(restored.optimizer);
  b_rng.set_state(restored.rng_state);
  train_steps(b, b_opt, b_rng, 4);

  EXPECT_EQ(b.flat_params(), ref.flat_params());  // exact equality
}

// -------------------------------------------- controller-state round trip

TEST(ControllerCheckpoint, StateRoundTrips) {
  core::ControllerState state;
  state.gns = 512.25;
  state.node_models = std::vector<core::NodeModel>{
      {0.01, 0.2, 0.005, 0.1, 256.0}, {0.02, 0.3, 0.004, 0.2, 128.0}};
  state.comm_times = core::CommTimes{0.5, 0.04, 0.02};

  common::BinaryWriter out;
  core::save_controller_state(out, state);
  common::BinaryReader in(out.buffer());
  const core::ControllerState back = core::load_controller_state(in);

  EXPECT_EQ(back.gns, state.gns);
  ASSERT_TRUE(back.node_models.has_value());
  ASSERT_EQ(back.node_models->size(), 2u);
  EXPECT_EQ((*back.node_models)[0].q, 0.01);
  EXPECT_EQ((*back.node_models)[1].max_batch, 128.0);
  ASSERT_TRUE(back.comm_times.has_value());
  EXPECT_EQ(back.comm_times->gamma, 0.5);
  EXPECT_EQ(back.comm_times->t_last, 0.02);
}

// ------------------------------------------------ sched::Checkpoint

sched::Checkpoint sample_checkpoint() {
  sched::Checkpoint ckpt;
  ckpt.epochs = 12;
  ckpt.progress = 0.375;
  ckpt.allocation = {0, 4, 8, 9};
  ckpt.network_scale = 0.75;
  ckpt.node_contention = {1.0, 1.0, 0.5, 1.0};
  ckpt.crash_recoveries = 1;
  ckpt.warm_reallocations = 2;
  ckpt.node_rejoins = 1;
  ckpt.recovery_overhead_seconds = 2.25;
  sched::ModelBank bank;
  bank.store_node("v100|xeon", {0.01, 0.2, 0.005, 0.1, 256.0});
  bank.store_comm(4, {0.5, 0.04, 0.02});
  ckpt.bank_text = bank.serialize();
  ckpt.controller.gns = 700.0;
  ckpt.payload_kind = "trainer-state";
  ckpt.payload = std::string("\x00\x01\x02 raw", 8);
  return ckpt;
}

TEST(SchedCheckpoint, RoundTripsAllFields) {
  const sched::Checkpoint ckpt = sample_checkpoint();
  const sched::Checkpoint back = sched::Checkpoint::deserialize(ckpt.serialize());

  EXPECT_EQ(back.epochs, ckpt.epochs);
  EXPECT_EQ(back.progress, ckpt.progress);
  EXPECT_EQ(back.allocation, ckpt.allocation);
  EXPECT_EQ(back.network_scale, ckpt.network_scale);
  EXPECT_EQ(back.node_contention, ckpt.node_contention);
  EXPECT_EQ(back.crash_recoveries, ckpt.crash_recoveries);
  EXPECT_EQ(back.warm_reallocations, ckpt.warm_reallocations);
  EXPECT_EQ(back.node_rejoins, ckpt.node_rejoins);
  EXPECT_EQ(back.recovery_overhead_seconds, ckpt.recovery_overhead_seconds);
  EXPECT_EQ(back.bank_text, ckpt.bank_text);
  EXPECT_EQ(back.controller.gns, ckpt.controller.gns);
  EXPECT_EQ(back.payload_kind, ckpt.payload_kind);
  EXPECT_EQ(back.payload, ckpt.payload);

  // The embedded bank text still parses back into the same entries.
  const sched::ModelBank bank = sched::ModelBank::deserialize(back.bank_text);
  EXPECT_EQ(bank.num_node_entries(), 1u);
  EXPECT_EQ(bank.num_comm_entries(), 1u);
}

// ------------------------------------------------- CheckpointStore

TEST(CheckpointStore, SaveLoadLatestAndRetention) {
  TempDir dir("cannikin-store-test");
  sched::CheckpointStore store(dir.str(), /*keep_last=*/2);

  sched::Checkpoint ckpt = sample_checkpoint();
  for (int e = 1; e <= 5; ++e) {
    ckpt.epochs = e;
    store.save(ckpt);
  }
  // Retention: only the last 2 survive.
  EXPECT_EQ(store.list().size(), 2u);
  const auto latest = store.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->epochs, 5);
}

TEST(CheckpointStore, SequenceOrderWinsOverEpochAfterRollback) {
  TempDir dir("cannikin-store-rollback");
  sched::CheckpointStore store(dir.str(), /*keep_last=*/3);
  sched::Checkpoint ckpt = sample_checkpoint();
  ckpt.epochs = 10;
  store.save(ckpt);
  // After a restore the job rolls back and re-checkpoints an *earlier*
  // epoch; that file is newer and must win.
  ckpt.epochs = 7;
  store.save(ckpt);
  const auto latest = store.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->epochs, 7);
}

TEST(CheckpointStore, StaleTmpFileIsIgnored) {
  TempDir dir("cannikin-store-tmp");
  sched::CheckpointStore store(dir.str(), /*keep_last=*/3);
  sched::Checkpoint ckpt = sample_checkpoint();
  store.save(ckpt);
  // A crash mid-save leaves a half-written .tmp behind; it must never
  // be listed or loaded.
  write_file(dir.str() + "/ckpt-99999999-e000099.bin.tmp", "garbage");
  EXPECT_EQ(store.list().size(), 1u);
  const auto latest = store.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->epochs, ckpt.epochs);
}

TEST(CheckpointStore, TruncatedNewestFallsBackToOlderGoodCheckpoint) {
  TempDir dir("cannikin-store-corrupt");
  sched::CheckpointStore store(dir.str(), /*keep_last=*/3);
  sched::Checkpoint ckpt = sample_checkpoint();
  ckpt.epochs = 3;
  store.save(ckpt);
  ckpt.epochs = 4;
  const std::string newest = store.save(ckpt);

  // Truncate the newest file in place (simulates a torn disk write that
  // somehow landed under the final name).
  const std::string bytes = read_file(newest);
  write_file(newest, bytes.substr(0, bytes.size() / 2));

  std::vector<std::string> skipped;
  const auto latest = store.load_latest(&skipped);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->epochs, 3);
  ASSERT_EQ(skipped.size(), 1u);
  EXPECT_EQ(skipped[0], newest);
}

TEST(CheckpointStore, NoUsableCheckpointReturnsNullopt) {
  TempDir dir("cannikin-store-empty");
  sched::CheckpointStore store(dir.str(), /*keep_last=*/3);
  EXPECT_FALSE(store.load_latest().has_value());
  write_file(dir.str() + "/ckpt-00000001-e000001.bin", "not a checkpoint");
  std::vector<std::string> skipped;
  EXPECT_FALSE(store.load_latest(&skipped).has_value());
  EXPECT_EQ(skipped.size(), 1u);
}

// ------------------------------------------- elastic-job round trip

TEST(JobCheckpoint, RestoredJobContinuesFromCheckpointedState) {
  const auto& workload = workloads::by_name("cifar10");
  sched::ElasticCannikinJob job(&workload, sim::cluster_b(),
                                sim::NoiseConfig{}, 3);
  job.set_allocation({0, 4, 8, 9});
  for (int i = 0; i < 6; ++i) job.run_epoch();

  const sched::Checkpoint ckpt = job.make_checkpoint();
  EXPECT_EQ(ckpt.epochs, 6);
  EXPECT_GT(ckpt.progress, 0.0);
  EXPECT_EQ(ckpt.allocation, (std::vector<int>{0, 4, 8, 9}));

  // Byte round trip, then restore into a brand-new process's job.
  const sched::Checkpoint back = sched::Checkpoint::deserialize(ckpt.serialize());
  sched::ElasticCannikinJob restored(&workload, sim::cluster_b(),
                                     sim::NoiseConfig{}, 3);
  restored.restore_from_checkpoint(back);

  EXPECT_EQ(restored.epochs_run(), 6);
  EXPECT_EQ(restored.progress_fraction(), job.progress_fraction());
  EXPECT_EQ(restored.allocation(), job.allocation());
  // Warm restore: the bank + controller state cover the allocation, so
  // planning resumes without bootstrap epochs.
  EXPECT_GT(restored.warm_reallocations(), 0);
  EXPECT_GT(restored.run_epoch(), 0.0);
  // One more epoch advances past the checkpointed job's progress.
  EXPECT_GT(restored.progress_fraction(), job.progress_fraction());
}

TEST(JobCheckpoint, RestoreExcludesDeadNodes) {
  const auto& workload = workloads::by_name("cifar10");
  sched::ElasticCannikinJob job(&workload, sim::cluster_b(),
                                sim::NoiseConfig{}, 3);
  job.set_allocation({0, 4, 8, 9});
  for (int i = 0; i < 4; ++i) job.run_epoch();
  const sched::Checkpoint ckpt = job.make_checkpoint();

  sched::ElasticCannikinJob restored(&workload, sim::cluster_b(),
                                     sim::NoiseConfig{}, 3);
  restored.restore_from_checkpoint(ckpt, /*exclude_nodes=*/{4});
  EXPECT_EQ(restored.allocation(), (std::vector<int>{0, 8, 9}));
  EXPECT_GT(restored.run_epoch(), 0.0);

  sched::ElasticCannikinJob dead(&workload, sim::cluster_b(),
                                 sim::NoiseConfig{}, 3);
  EXPECT_THROW(dead.restore_from_checkpoint(ckpt, {0, 4, 8, 9}),
               std::runtime_error);
}

TEST(JobCheckpoint, RestoreIntoAllocatedJobThrows) {
  const auto& workload = workloads::by_name("cifar10");
  sched::ElasticCannikinJob job(&workload, sim::cluster_b(),
                                sim::NoiseConfig{}, 3);
  job.set_allocation({0, 4});
  job.run_epoch();
  const sched::Checkpoint ckpt = job.make_checkpoint();
  EXPECT_THROW(job.restore_from_checkpoint(ckpt), std::logic_error);
}

}  // namespace
