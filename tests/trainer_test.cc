// Tests for the threaded data-parallel trainer: the Section 4.3
// equivalence claim (weighted aggregation over uneven local batches
// reproduces the full-batch gradient step), real convergence, and GNS
// estimation from genuine stochastic gradients.
#include <gtest/gtest.h>

#include <cmath>

#include "dnn/data.h"
#include "dnn/model.h"
#include "dnn/parallel_trainer.h"

namespace cannikin::dnn {
namespace {

InMemoryDataset small_classification(std::size_t size = 600) {
  return make_gaussian_mixture(size, 10, 3, 3.5, 42);
}

std::function<Model()> mlp_factory() {
  return [] { return make_mlp(10, 16, 1, 3); };
}

TrainerOptions base_options(int nodes) {
  TrainerOptions options;
  options.num_nodes = nodes;
  options.base_lr = 0.05;
  options.lr_scaling = LrScaling::kNone;
  options.initial_total_batch = 60;
  options.seed = 7;
  return options;
}

TEST(ParallelTrainer, HeterogeneousSplitMatchesSingleNodeExactly) {
  // Section 4.3: with Eq. (9) aggregation, the update for local batches
  // {30, 20, 10} equals the single-node update at batch 60 over the
  // same samples. The HeteroDataLoader seed fixes identical sample
  // order; parameters must match to floating-point roundoff.
  const auto dataset = small_classification();

  ParallelTrainer single(&dataset, mlp_factory(), base_options(1));
  ParallelTrainer multi(&dataset, mlp_factory(), base_options(3));

  single.run_epoch({60});
  multi.run_epoch({30, 20, 10});

  const auto& ps = single.params();
  const auto& pm = multi.params();
  ASSERT_EQ(ps.size(), pm.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(ps[i] - pm[i]));
  }
  EXPECT_LT(max_diff, 1e-9);
}

TEST(ParallelTrainer, EvenSplitAlsoMatchesSingleNode) {
  const auto dataset = small_classification();
  ParallelTrainer single(&dataset, mlp_factory(), base_options(1));
  ParallelTrainer multi(&dataset, mlp_factory(), base_options(4));
  single.run_epoch({60});
  multi.run_epoch({15, 15, 15, 15});
  for (std::size_t i = 0; i < single.params().size(); ++i) {
    EXPECT_NEAR(single.params()[i], multi.params()[i], 1e-9);
  }
}

TEST(ParallelTrainer, LossDecreasesAndAccuracyRises) {
  const auto dataset = small_classification();
  ParallelTrainer trainer(&dataset, mlp_factory(), base_options(3));
  const double initial_loss = trainer.evaluate_loss(dataset);
  double last_loss = 0.0;
  for (int epoch = 0; epoch < 8; ++epoch) {
    last_loss = trainer.run_epoch({30, 20, 10}).mean_loss;
  }
  EXPECT_LT(trainer.evaluate_loss(dataset), initial_loss);
  EXPECT_LT(last_loss, initial_loss);
  EXPECT_GT(trainer.evaluate_accuracy(dataset), 0.8);
}

TEST(ParallelTrainer, GnsBecomesPositiveAndFinite) {
  const auto dataset = small_classification();
  ParallelTrainer trainer(&dataset, mlp_factory(), base_options(3));
  EpochResult result;
  for (int epoch = 0; epoch < 3; ++epoch) {
    result = trainer.run_epoch({30, 20, 10});
  }
  EXPECT_FALSE(result.gns_samples.empty());
  EXPECT_GE(trainer.current_gns(), 0.0);
  EXPECT_TRUE(std::isfinite(trainer.current_gns()));
}

TEST(ParallelTrainer, BinaryRankingTaskTrains) {
  const auto dataset = make_mf_dataset(800, 8, 30, 40, 0.05, 3);
  TrainerOptions options = base_options(2);
  options.task = TaskKind::kBinaryRanking;
  options.use_adam = true;
  options.base_lr = 0.01;
  options.lr_scaling = LrScaling::kSquareRoot;
  ParallelTrainer trainer(
      &dataset, [] { return make_mlp_regressor(16, 12, 1); }, options);
  const double initial = trainer.evaluate_accuracy(dataset);
  for (int epoch = 0; epoch < 20; ++epoch) {
    trainer.run_epoch({40, 24});
  }
  EXPECT_GT(trainer.evaluate_accuracy(dataset), initial);
  EXPECT_GT(trainer.evaluate_accuracy(dataset), 0.72);
}

TEST(ParallelTrainer, ZeroBatchNodeParticipatesSafely) {
  const auto dataset = small_classification(200);
  ParallelTrainer trainer(&dataset, mlp_factory(), base_options(3));
  // Node 1 gets no work; collectives must still complete and training
  // must still make progress.
  const auto result = trainer.run_epoch({40, 0, 20});
  EXPECT_GT(result.steps, 0);
  EXPECT_TRUE(std::isfinite(result.mean_loss));
}

TEST(ParallelTrainer, Validation) {
  const auto dataset = small_classification(100);
  ParallelTrainer trainer(&dataset, mlp_factory(), base_options(2));
  EXPECT_THROW(trainer.run_epoch({10}), std::invalid_argument);
  EXPECT_THROW(trainer.run_epoch({0, 0}), std::invalid_argument);
  EXPECT_THROW(ParallelTrainer(nullptr, mlp_factory(), base_options(2)),
               std::invalid_argument);
}

TEST(ParallelTrainer, DeterministicAcrossRuns) {
  const auto dataset = small_classification(300);
  ParallelTrainer a(&dataset, mlp_factory(), base_options(3));
  ParallelTrainer b(&dataset, mlp_factory(), base_options(3));
  a.run_epoch({30, 20, 10});
  b.run_epoch({30, 20, 10});
  EXPECT_EQ(a.params(), b.params());
}

}  // namespace
}  // namespace cannikin::dnn
