// Cross-module smoke test: every library links and the primary flow
// (simulate -> learn -> solve -> plan) runs end to end.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "experiments/cannikin_system.h"
#include "experiments/harness.h"
#include "sim/cluster_factory.h"
#include "workloads/registry.h"

namespace cannikin {
namespace {

TEST(Smoke, CannikinReachesTargetOnClusterA) {
  const auto& workload = workloads::by_name("cifar10");
  sim::ClusterJob job(sim::cluster_a(), workload.profile,
                      sim::NoiseConfig{}, 1);

  std::vector<double> caps;
  for (int i = 0; i < job.size(); ++i) {
    caps.push_back(job.max_local_batch(i));
  }
  experiments::CannikinSystem system(job.size(), caps, workload.b0,
                                     workload.max_total_batch);
  experiments::HarnessOptions options;
  options.max_epochs = 200;
  const auto trace =
      experiments::run_to_target(job, workload, system, options);
  EXPECT_TRUE(trace.reached_target);
  EXPECT_GT(trace.total_seconds, 0.0);
}

}  // namespace
}  // namespace cannikin
