// End-to-end integration tests asserting the paper's headline result
// *shapes*: Cannikin converges faster than AdaptDL, LB-BSP and DDP on
// heterogeneous clusters (Figures 7/8), approaches OptPerf within two
// learning epochs while LB-BSP needs many rounds (Figure 9), predicts
// OptPerf accurately (Section 5.3), and degenerates gracefully to
// AdaptDL-like behavior on homogeneous clusters (Section 6).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/adaptdl.h"
#include "baselines/ddp.h"
#include "baselines/lbbsp.h"
#include "core/optperf.h"
#include "experiments/cannikin_system.h"
#include "experiments/harness.h"
#include "sim/cluster_factory.h"
#include "workloads/registry.h"

namespace cannikin {
namespace {

using experiments::CannikinSystem;
using experiments::HarnessOptions;
using experiments::run_to_target;

std::vector<double> caps_of(const sim::ClusterJob& job) {
  std::vector<double> caps;
  for (int i = 0; i < job.size(); ++i) caps.push_back(job.max_local_batch(i));
  return caps;
}

TEST(Integration, CannikinFastestOnHeterogeneousClusterB) {
  const auto& workload = workloads::by_name("cifar10");
  HarnessOptions options;
  options.max_epochs = 400;

  auto run_system = [&](auto&& factory) {
    sim::ClusterJob job(sim::cluster_b(), workload.profile,
                        sim::NoiseConfig{}, 7);
    auto system = factory(job);
    return run_to_target(job, workload, *system, options);
  };

  const auto cannikin = run_system([&](sim::ClusterJob& job) {
    return std::make_unique<CannikinSystem>(job.size(), caps_of(job),
                                            workload.b0,
                                            workload.max_total_batch);
  });
  const auto adaptdl = run_system([&](sim::ClusterJob& job) {
    return std::make_unique<baselines::AdaptDlSystem>(
        job.size(), workload.b0, workload.max_total_batch, caps_of(job));
  });
  const auto ddp = run_system([&](sim::ClusterJob& job) {
    return std::make_unique<baselines::DdpSystem>(job.size(), workload.b0,
                                                  caps_of(job));
  });
  const auto lbbsp = run_system([&](sim::ClusterJob& job) {
    return std::make_unique<baselines::LbBspSystem>(job.size(), workload.b0,
                                                    caps_of(job));
  });

  ASSERT_TRUE(cannikin.reached_target);
  ASSERT_TRUE(adaptdl.reached_target);
  ASSERT_TRUE(ddp.reached_target);
  ASSERT_TRUE(lbbsp.reached_target);

  // Figure 7/8 orderings.
  EXPECT_LT(cannikin.total_seconds, adaptdl.total_seconds);
  EXPECT_LT(cannikin.total_seconds, ddp.total_seconds);
  EXPECT_LT(cannikin.total_seconds, lbbsp.total_seconds);
  // Adaptive batch sizing beats fixed-batch training outright.
  EXPECT_LT(adaptdl.total_seconds, ddp.total_seconds);
}

TEST(Integration, CannikinApproachesOptPerfByThirdEpochLbBspSlower) {
  // Figure 9: fixed total batch 128, ImageNet on cluster A, even init.
  const auto& workload = workloads::by_name("imagenet");
  const int total_batch = 128;

  sim::ClusterJob truth_job(sim::cluster_a(), workload.profile,
                            sim::NoiseConfig::none(), 1);
  // Ground-truth OptPerf from the true coefficients.
  std::vector<core::NodeModel> models;
  for (int i = 0; i < truth_job.size(); ++i) {
    const auto& t = truth_job.truth(i);
    models.push_back({t.q, t.s, t.k, t.m,
                      static_cast<double>(t.max_local_batch)});
  }
  core::OptPerfSolver solver(
      models, {truth_job.gamma(), truth_job.comm().t_other,
               truth_job.comm().t_last});
  const double optperf = solver.solve(total_batch).batch_time;

  auto batch_time_at_epoch = [&](experiments::TrainingSystem& system,
                                 sim::ClusterJob& job, int epochs) {
    double last = 0.0;
    for (int epoch = 0; epoch < epochs; ++epoch) {
      const auto plan = system.plan_epoch();
      // A real B=128 ImageNet epoch averages ~10k batches; simulate 128
      // so profiler noise stays realistically small.
      const auto obs = job.run_epoch(plan.local_batches, 128);
      system.observe_epoch(obs);
      last = obs.avg_batch_time;
    }
    return last;
  };

  sim::ClusterJob job_a(sim::cluster_a(), workload.profile,
                        sim::NoiseConfig{}, 2);
  CannikinSystem cannikin(job_a.size(), caps_of(job_a), total_batch,
                          total_batch, /*adaptive=*/false);
  const double cannikin_epoch4 = batch_time_at_epoch(cannikin, job_a, 4);
  // Within 6% of OptPerf after two learning epochs + rounding + noise.
  EXPECT_LT(cannikin_epoch4, 1.06 * optperf);

  sim::ClusterJob job_b(sim::cluster_a(), workload.profile,
                        sim::NoiseConfig{}, 2);
  baselines::LbBspSystem lbbsp(job_b.size(), total_batch, caps_of(job_b));
  const double lbbsp_epoch4 = batch_time_at_epoch(lbbsp, job_b, 4);
  // LB-BSP moves at most Delta=5 samples per node per epoch: still far.
  EXPECT_GT(lbbsp_epoch4, 1.10 * optperf);

  sim::ClusterJob job_c(sim::cluster_a(), workload.profile,
                        sim::NoiseConfig{}, 2);
  baselines::LbBspSystem lbbsp_long(job_c.size(), total_batch,
                                    caps_of(job_c));
  const double lbbsp_epoch25 = batch_time_at_epoch(lbbsp_long, job_c, 25);
  // ... but it does converge eventually (toward equal compute time,
  // which at this batch size is close to OptPerf).
  EXPECT_LT(lbbsp_epoch25, lbbsp_epoch4);
}

TEST(Integration, LearnedOptPerfPredictionWithinSevenPercent) {
  // Section 5.3: train with measurement noise, then compare the
  // model-predicted OptPerf against the true (simulator) batch time of
  // the predicted assignment and against the true optimum.
  const auto& workload = workloads::by_name("imagenet");
  sim::ClusterJob job(sim::cluster_a(), workload.profile, sim::NoiseConfig{},
                      11);
  CannikinSystem system(job.size(), caps_of(job), workload.b0,
                        workload.max_total_batch);
  system.observe_gns(workload.gns_initial);
  for (int epoch = 0; epoch < 8; ++epoch) {
    const auto plan = system.plan_epoch();
    system.observe_epoch(job.run_epoch(plan.local_batches, 16));
  }
  const auto models = system.controller().learned_models();
  const auto comm = system.controller().learned_comm();
  ASSERT_TRUE(models && comm);
  core::OptPerfSolver learned(*models, *comm);

  for (int total : {100, 400, 1000}) {
    const auto predicted = learned.solve(total);
    const double actual = job.true_batch_time(predicted.local_batches);
    EXPECT_NEAR(predicted.batch_time, actual, 0.07 * actual)
        << "B=" << total;
  }
}

TEST(Integration, HomogeneousClusterMatchesAdaptDlWithinMargin) {
  // Section 6: "In homogeneous clusters, Cannikin's performance is
  // identical to AdaptDL."
  const auto& workload = workloads::by_name("cifar10");
  sim::ClusterSpec homogeneous = sim::cluster_c(std::vector<double>(8, 1.0));
  HarnessOptions options;
  options.max_epochs = 400;

  sim::ClusterJob job1(homogeneous, workload.profile, sim::NoiseConfig{}, 5);
  CannikinSystem cannikin(job1.size(), caps_of(job1), workload.b0,
                          workload.max_total_batch);
  const auto trace_c = run_to_target(job1, workload, cannikin, options);

  sim::ClusterJob job2(homogeneous, workload.profile, sim::NoiseConfig{}, 5);
  baselines::AdaptDlSystem adaptdl(job2.size(), workload.b0,
                                   workload.max_total_batch, caps_of(job2));
  const auto trace_a = run_to_target(job2, workload, adaptdl, options);

  ASSERT_TRUE(trace_c.reached_target);
  ASSERT_TRUE(trace_a.reached_target);
  EXPECT_NEAR(trace_c.total_seconds, trace_a.total_seconds,
              0.15 * trace_a.total_seconds);
}

TEST(Integration, SharingInducedHeterogeneityClusterC) {
  // Section 6: contended cluster C behaves like the hardware-
  // heterogeneous clusters -- Cannikin still beats DDP clearly.
  const auto& workload = workloads::by_name("cifar10");
  HarnessOptions options;
  options.max_epochs = 400;

  sim::ClusterJob job1(sim::cluster_c(), workload.profile,
                       sim::NoiseConfig{}, 9);
  CannikinSystem cannikin(job1.size(), caps_of(job1), workload.b0,
                          workload.max_total_batch);
  const auto trace_c = run_to_target(job1, workload, cannikin, options);

  sim::ClusterJob job2(sim::cluster_c(), workload.profile,
                       sim::NoiseConfig{}, 9);
  baselines::DdpSystem ddp(job2.size(), workload.b0, caps_of(job2));
  const auto trace_d = run_to_target(job2, workload, ddp, options);

  ASSERT_TRUE(trace_c.reached_target);
  ASSERT_TRUE(trace_d.reached_target);
  EXPECT_LT(trace_c.total_seconds, 0.7 * trace_d.total_seconds);
}

TEST(Integration, HarnessTraceAccounting) {
  const auto& workload = workloads::by_name("cifar10");
  sim::ClusterJob job(sim::cluster_a(), workload.profile, sim::NoiseConfig{},
                      3);
  CannikinSystem system(job.size(), caps_of(job), workload.b0,
                        workload.max_total_batch);
  HarnessOptions options;
  options.max_epochs = 150;
  const auto trace = run_to_target(job, workload, system, options);
  ASSERT_TRUE(trace.reached_target);
  ASSERT_FALSE(trace.epochs.empty());

  double previous_clock = 0.0;
  double previous_progress = 0.0;
  for (const auto& row : trace.epochs) {
    EXPECT_GT(row.total_batch, 0);
    EXPECT_GT(row.epoch_seconds, 0.0);
    EXPECT_GE(row.overhead_seconds, 0.0);
    EXPECT_GT(row.cumulative_seconds, previous_clock);
    EXPECT_GE(row.progress_fraction, previous_progress);
    previous_clock = row.cumulative_seconds;
    previous_progress = row.progress_fraction;
  }
  EXPECT_NEAR(trace.epochs.back().progress_fraction, 1.0, 1e-9);
  EXPECT_NEAR(trace.final_metric(), workload.metric_target, 1e-6);
  EXPECT_DOUBLE_EQ(trace.total_seconds,
                   trace.epochs.back().cumulative_seconds);
}

}  // namespace
}  // namespace cannikin
