// Tests for the training substrate: tensors, layers (finite-difference
// gradient checks), losses, models, optimizers, datasets.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "dnn/data.h"
#include "dnn/layers.h"
#include "dnn/loss.h"
#include "dnn/model.h"
#include "dnn/optimizer.h"
#include "dnn/tensor.h"

namespace cannikin::dnn {
namespace {

// Tensor::shape() is a span view; materialize it for gtest comparisons.
std::vector<std::size_t> shape_of(const Tensor& t) {
  return {t.shape().begin(), t.shape().end()};
}

// ----------------------------------------------------------------- tensor

TEST(Tensor, ShapeAndFill) {
  Tensor t({2, 3}, 1.5);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_DOUBLE_EQ(t.at(1, 2), 1.5);
  t.fill(0.0);
  EXPECT_DOUBLE_EQ(t[5], 0.0);
  EXPECT_THROW(Tensor(std::vector<std::size_t>{}), std::invalid_argument);
}

// Satellite: Tensor::at long claimed debug bounds checks; they are now
// real assert()s. In release builds (NDEBUG) they compile out to keep
// the hot path free, so the death test only runs in assert-enabled
// builds. The in-range accesses below must work in every build type.
TEST(Tensor, AtBoundsChecks) {
  Tensor t({2, 3}, 0.0);
  t.at(0, 0) = 1.0;
  t.at(1, 2) = 2.0;
  EXPECT_DOUBLE_EQ(t.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(1, 2), 2.0);
#ifdef NDEBUG
  GTEST_SKIP() << "assert() bounds checks compile out under NDEBUG";
#else
  EXPECT_DEATH(t.at(2, 0), "");          // row out of range
  EXPECT_DEATH(t.at(0, 3), "");          // column out of range
  Tensor vec({4});
  EXPECT_DEATH(vec.at(0, 0), "");        // rank-2 accessor on rank-1 tensor
#endif
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3});
  for (std::size_t i = 0; i < 6; ++i) t[i] = static_cast<double>(i);
  const Tensor r = t.reshaped({3, 2});
  EXPECT_DOUBLE_EQ(r.at(2, 1), 5.0);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, MatmulAgainstHandComputed) {
  Tensor a = Tensor::matrix(2, 3);
  Tensor b = Tensor::matrix(3, 2);
  for (std::size_t i = 0; i < 6; ++i) {
    a[i] = static_cast<double>(i + 1);       // [[1,2,3],[4,5,6]]
    b[i] = static_cast<double>(6 - i);       // [[6,5],[4,3],[2,1]]
  }
  const Tensor c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 1 * 6 + 2 * 4 + 3 * 2);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 4 * 5 + 5 * 3 + 6 * 1);
}

TEST(Tensor, TransposedVariantsAgreeWithMatmul) {
  Rng rng(1);
  Tensor a = Tensor::matrix(4, 3);
  Tensor b = Tensor::matrix(5, 3);
  Tensor c = Tensor::matrix(4, 5);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = rng.normal();
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng.normal();
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = rng.normal();

  // a * b^T via matmul_transposed.
  const Tensor abt = matmul_transposed(a, b);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t col = 0; col < 5; ++col) {
      double expected = 0.0;
      for (std::size_t k = 0; k < 3; ++k) expected += a.at(r, k) * b.at(col, k);
      EXPECT_NEAR(abt.at(r, col), expected, 1e-12);
    }
  }
  // a^T * c via transposed_matmul.
  const Tensor atc = transposed_matmul(a, c);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t col = 0; col < 5; ++col) {
      double expected = 0.0;
      for (std::size_t k = 0; k < 4; ++k) expected += a.at(k, r) * c.at(k, col);
      EXPECT_NEAR(atc.at(r, col), expected, 1e-12);
    }
  }
}

// ------------------------------------------------- gradient check helpers

// Numerically checks dLoss/dInput and dLoss/dParams of a model against
// central finite differences, where Loss = sum(output * probe) for a
// fixed random probe tensor (covers arbitrary upstream gradients).
void gradient_check(Model& model, const Tensor& input, double tolerance) {
  Rng rng(99);
  Tensor output = model.forward(input);
  Tensor probe = output;
  for (std::size_t i = 0; i < probe.size(); ++i) probe[i] = rng.normal();

  auto loss_at = [&](const Tensor& x) {
    const Tensor out = model.forward(x);
    double total = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) total += out[i] * probe[i];
    return total;
  };

  model.zero_grads();
  model.forward(input);
  model.backward(probe);
  const std::vector<double> analytic_param_grads = model.flat_grads();

  // Parameter gradients.
  const std::vector<double> params = model.flat_params();
  const double eps = 1e-5;
  for (std::size_t p = 0; p < params.size(); p += std::max<std::size_t>(
           1, params.size() / 25)) {  // probe ~25 parameters
    std::vector<double> bumped = params;
    bumped[p] += eps;
    model.set_flat_params(bumped);
    const double up = loss_at(input);
    bumped[p] -= 2 * eps;
    model.set_flat_params(bumped);
    const double down = loss_at(input);
    model.set_flat_params(params);
    EXPECT_NEAR(analytic_param_grads[p], (up - down) / (2 * eps), tolerance)
        << "param " << p;
  }
}

// Per-layer input gradient check (Model::backward does not expose the
// input gradient, so dInput is validated layer by layer).
void layer_input_gradient_check(Layer& layer, const Tensor& input,
                                double tolerance) {
  Rng rng(7);
  Tensor output = layer.forward(input);
  Tensor probe = output;
  for (std::size_t i = 0; i < probe.size(); ++i) probe[i] = rng.normal();

  layer.zero_grads();
  layer.forward(input);
  const Tensor analytic = layer.backward(probe);

  const double eps = 1e-5;
  auto loss_at = [&](const Tensor& x) {
    Tensor out = layer.forward(x);
    double total = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) total += out[i] * probe[i];
    return total;
  };
  for (std::size_t i = 0; i < input.size();
       i += std::max<std::size_t>(1, input.size() / 20)) {
    Tensor bumped = input;
    bumped[i] += eps;
    const double up = loss_at(bumped);
    bumped[i] -= 2 * eps;
    const double down = loss_at(bumped);
    EXPECT_NEAR(analytic[i], (up - down) / (2 * eps), tolerance)
        << "input " << i;
  }
}

Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = rng.normal();
  return t;
}

// ----------------------------------------------------------------- layers

TEST(Linear, GradientCheck) {
  Rng rng(1);
  Model model;
  model.add(std::make_unique<Linear>(5, 4));
  model.init(rng);
  gradient_check(model, random_tensor({3, 5}, rng), 1e-6);

  Linear layer(5, 4);
  layer.init(rng);
  layer_input_gradient_check(layer, random_tensor({3, 5}, rng), 1e-6);
}

TEST(ReLUAndTanh, InputGradientCheck) {
  Rng rng(2);
  ReLU relu;
  layer_input_gradient_check(relu, random_tensor({4, 6}, rng), 1e-5);
  Tanh tanh_layer;
  layer_input_gradient_check(tanh_layer, random_tensor({4, 6}, rng), 1e-5);
}

TEST(Conv2d, GradientCheck) {
  Rng rng(3);
  Model model;
  model.add(std::make_unique<Conv2d>(2, 3, 3, 1));
  model.init(rng);
  gradient_check(model, random_tensor({2, 2, 6, 6}, rng), 1e-5);

  Conv2d layer(2, 3, 3, 1);
  layer.init(rng);
  layer_input_gradient_check(layer, random_tensor({2, 2, 6, 6}, rng), 1e-5);
}

TEST(Conv2d, OutputShapeWithPadding) {
  Rng rng(4);
  Conv2d same(1, 2, 3, 1);
  same.init(rng);
  const Tensor out = same.forward(random_tensor({1, 1, 8, 8}, rng));
  EXPECT_EQ(shape_of(out), (std::vector<std::size_t>{1, 2, 8, 8}));

  Conv2d valid(1, 2, 3, 0);
  valid.init(rng);
  const Tensor out2 = valid.forward(random_tensor({1, 1, 8, 8}, rng));
  EXPECT_EQ(shape_of(out2), (std::vector<std::size_t>{1, 2, 6, 6}));
}

TEST(AvgPool2x2, ForwardAveragesAndBackwardCheck) {
  Rng rng(5);
  AvgPool2x2 pool;
  Tensor input({1, 1, 2, 2});
  input[0] = 1.0;
  input[1] = 2.0;
  input[2] = 3.0;
  input[3] = 4.0;
  const Tensor out = pool.forward(input);
  EXPECT_DOUBLE_EQ(out[0], 2.5);
  layer_input_gradient_check(pool, random_tensor({2, 3, 4, 4}, rng), 1e-6);
  EXPECT_THROW(pool.forward(Tensor({1, 1, 3, 3})), std::invalid_argument);
}

TEST(Flatten, RoundTrip) {
  Rng rng(6);
  Flatten flatten;
  const Tensor input = random_tensor({2, 3, 4, 4}, rng);
  const Tensor out = flatten.forward(input);
  EXPECT_EQ(shape_of(out), (std::vector<std::size_t>{2, 48}));
  const Tensor back = flatten.backward(out);
  EXPECT_EQ(shape_of(back), shape_of(input));
}

// ----------------------------------------------------------------- losses

TEST(SoftmaxCrossEntropy, KnownValueAndGradientCheck) {
  Tensor logits = Tensor::matrix(1, 2);
  logits[0] = 0.0;
  logits[1] = 0.0;
  const auto result = softmax_cross_entropy(logits, {0});
  EXPECT_NEAR(result.value, std::log(2.0), 1e-12);
  EXPECT_NEAR(result.grad[0], 0.5 - 1.0, 1e-12);
  EXPECT_NEAR(result.grad[1], 0.5, 1e-12);

  // Finite-difference check.
  Rng rng(7);
  Tensor x = random_tensor({3, 5}, rng);
  const std::vector<int> labels{1, 4, 2};
  const auto loss = softmax_cross_entropy(x, labels);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < x.size(); ++i) {
    Tensor bumped = x;
    bumped[i] += eps;
    const double up = softmax_cross_entropy(bumped, labels).value;
    bumped[i] -= 2 * eps;
    const double down = softmax_cross_entropy(bumped, labels).value;
    EXPECT_NEAR(loss.grad[i], (up - down) / (2 * eps), 1e-6);
  }
  EXPECT_THROW(softmax_cross_entropy(x, {1, 9, 2}), std::invalid_argument);
}

TEST(Accuracy, CountsArgmaxMatches) {
  Tensor logits = Tensor::matrix(2, 3);
  logits.at(0, 1) = 5.0;  // predicts 1
  logits.at(1, 0) = 5.0;  // predicts 0
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 2}), 0.5);
}

TEST(Mse, ValueAndGradient) {
  Tensor pred = Tensor::matrix(2, 1);
  Tensor target = Tensor::matrix(2, 1);
  pred[0] = 1.0;
  pred[1] = 3.0;
  target[0] = 0.0;
  target[1] = 1.0;
  const auto result = mse(pred, target);
  EXPECT_NEAR(result.value, (1.0 + 4.0) / 2.0, 1e-12);
  EXPECT_NEAR(result.grad[0], 2.0 * 1.0 / 2.0, 1e-12);
}

TEST(BceWithLogits, MatchesDirectFormulaAndGradientCheck) {
  Rng rng(8);
  Tensor logits = random_tensor({4, 1}, rng);
  const std::vector<double> targets{1.0, 0.0, 1.0, 0.0};
  const auto result = bce_with_logits(logits, targets);

  double expected = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    const double p = 1.0 / (1.0 + std::exp(-logits[i]));
    expected += -(targets[i] * std::log(p) + (1 - targets[i]) * std::log(1 - p));
  }
  EXPECT_NEAR(result.value, expected / 4.0, 1e-9);

  const double eps = 1e-6;
  for (std::size_t i = 0; i < 4; ++i) {
    Tensor bumped = logits;
    bumped[i] += eps;
    const double up = bce_with_logits(bumped, targets).value;
    bumped[i] -= 2 * eps;
    const double down = bce_with_logits(bumped, targets).value;
    EXPECT_NEAR(result.grad[i], (up - down) / (2 * eps), 1e-6);
  }
}

// ------------------------------------------------------------------ model

TEST(Model, FlatParamRoundTrip) {
  Rng rng(9);
  Model model = make_mlp(10, 8, 2, 3);
  model.init(rng);
  const auto params = model.flat_params();
  EXPECT_EQ(params.size(), model.num_params());
  EXPECT_EQ(params.size(), 10u * 8 + 8 + 8u * 8 + 8 + 8u * 3 + 3);

  std::vector<double> doubled = params;
  for (auto& v : doubled) v *= 2.0;
  model.set_flat_params(doubled);
  EXPECT_EQ(model.flat_params(), doubled);
  EXPECT_THROW(model.set_flat_params({1.0}), std::invalid_argument);
}

TEST(Model, MlpGradientCheck) {
  Rng rng(10);
  Model model = make_mlp(6, 5, 1, 4);
  model.init(rng);
  gradient_check(model, random_tensor({4, 6}, rng), 1e-5);
}

TEST(Model, CnnForwardShape) {
  Rng rng(11);
  Model model = make_cnn(3, 8, 8, 4, 10);
  model.init(rng);
  const Tensor out = model.forward(random_tensor({2, 3, 8, 8}, rng));
  EXPECT_EQ(shape_of(out), (std::vector<std::size_t>{2, 10}));
  EXPECT_THROW(make_cnn(3, 9, 8, 4, 10), std::invalid_argument);
}

// -------------------------------------------------------------- optimizer

TEST(Sgd, PlainStepMovesAgainstGradient) {
  Sgd sgd(0.0);
  std::vector<double> params{1.0, -1.0};
  const std::vector<double> grads{0.5, -0.5};
  sgd.step(params, grads, 0.1);
  EXPECT_NEAR(params[0], 0.95, 1e-12);
  EXPECT_NEAR(params[1], -0.95, 1e-12);
}

TEST(Sgd, MomentumAccumulates) {
  Sgd sgd(0.9);
  std::vector<double> params{0.0};
  const std::vector<double> grads{1.0};
  sgd.step(params, grads, 1.0);   // v=1, p=-1
  sgd.step(params, grads, 1.0);   // v=1.9, p=-2.9
  EXPECT_NEAR(params[0], -2.9, 1e-12);
  sgd.reset();
  params[0] = 0.0;
  sgd.step(params, grads, 1.0);
  EXPECT_NEAR(params[0], -1.0, 1e-12);
}

TEST(Adam, ConvergesOnQuadratic) {
  Adam adam;
  std::vector<double> params{5.0};
  for (int i = 0; i < 500; ++i) {
    const std::vector<double> grads{2.0 * params[0]};
    adam.step(params, grads, 0.05);
  }
  EXPECT_NEAR(params[0], 0.0, 1e-2);
}

TEST(Adam, DecoupledWeightDecayShrinksParams) {
  auto adamw = make_adamw(0.1);
  std::vector<double> params{1.0};
  const std::vector<double> zero_grads{0.0};
  adamw->step(params, zero_grads, 0.1);
  EXPECT_LT(params[0], 1.0);
}

TEST(ScaledLr, AllRules) {
  EXPECT_DOUBLE_EQ(scaled_lr(LrScaling::kNone, 0.1, 256, 64, 0.0), 0.1);
  EXPECT_DOUBLE_EQ(scaled_lr(LrScaling::kLinear, 0.1, 256, 64, 0.0), 0.4);
  EXPECT_DOUBLE_EQ(scaled_lr(LrScaling::kSquareRoot, 0.1, 256, 64, 0.0), 0.2);
  // AdaScale: gain -> ratio when noise >> batch, -> 1 when noise -> 0.
  EXPECT_NEAR(scaled_lr(LrScaling::kAdaScale, 0.1, 256, 64, 1e9), 0.4, 1e-3);
  EXPECT_NEAR(scaled_lr(LrScaling::kAdaScale, 0.1, 256, 64, 0.0), 0.1, 1e-9);
  EXPECT_THROW(scaled_lr(LrScaling::kLinear, 0.1, 0, 64, 0.0),
               std::invalid_argument);
}

// ------------------------------------------------------------------- data

TEST(GaussianMixture, LearnableStructure) {
  const auto dataset = make_gaussian_mixture(500, 8, 3, 4.0, 1);
  EXPECT_EQ(dataset.size(), 500u);
  EXPECT_EQ(dataset.sample_elements(), 8u);
  // Labels within range.
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_GE(dataset.label(i), 0);
    EXPECT_LT(dataset.label(i), 3);
  }
}

TEST(SyntheticImages, ShapeAndDeterminism) {
  const auto a = make_synthetic_images(50, 3, 8, 8, 4, 0.3, 7);
  const auto b = make_synthetic_images(50, 3, 8, 8, 4, 0.3, 7);
  EXPECT_EQ(a.sample_shape(), (std::vector<std::size_t>{3, 8, 8}));
  const std::size_t idx[] = {0, 1};
  const Tensor ta = a.gather(std::span<const std::size_t>(idx, 2));
  const Tensor tb = b.gather(std::span<const std::size_t>(idx, 2));
  EXPECT_EQ(ta.storage(), tb.storage());
}

TEST(MfDataset, BinaryTargets) {
  const auto dataset = make_mf_dataset(300, 6, 20, 30, 0.1, 5);
  EXPECT_EQ(dataset.sample_elements(), 12u);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const double t = dataset.target(i);
    EXPECT_TRUE(t == 0.0 || t == 1.0);
  }
}

TEST(InMemoryDataset, GatherAndValidation) {
  InMemoryDataset dataset({2}, {1.0, 2.0, 3.0, 4.0}, {0, 1}, {});
  const std::size_t idx[] = {1, 0};
  const Tensor batch = dataset.gather(std::span<const std::size_t>(idx, 2));
  EXPECT_DOUBLE_EQ(batch.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(batch.at(1, 1), 2.0);
  const auto labels = dataset.gather_labels(std::span<const std::size_t>(idx, 2));
  EXPECT_EQ(labels[0], 1);
  EXPECT_THROW(InMemoryDataset({2}, {1.0, 2.0, 3.0}, {}, {}),
               std::invalid_argument);
  EXPECT_THROW(InMemoryDataset({2}, {1.0, 2.0}, {0, 1}, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cannikin::dnn
