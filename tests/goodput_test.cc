// Tests for the goodput model and batch-size candidate selection.
#include <gtest/gtest.h>

#include "core/goodput.h"

namespace cannikin::core {
namespace {

TEST(GoodputModel, EfficiencyIsOneAtInitialBatch) {
  GoodputModel model(64.0);
  EXPECT_DOUBLE_EQ(model.efficiency(500.0, 64.0), 1.0);
}

TEST(GoodputModel, EfficiencyDecreasesWithBatch) {
  GoodputModel model(64.0);
  double previous = 2.0;
  for (double batch = 64.0; batch <= 4096.0; batch *= 2.0) {
    const double e = model.efficiency(500.0, batch);
    EXPECT_LT(e, previous);
    EXPECT_GT(e, 0.0);
    EXPECT_LE(e, 1.0);
    previous = e;
  }
}

TEST(GoodputModel, HigherNoiseToleratesLargerBatches) {
  // E(B) rises with the noise scale: large batches only hurt when the
  // gradient is clean.
  GoodputModel model(64.0);
  EXPECT_GT(model.efficiency(10000.0, 1024.0),
            model.efficiency(100.0, 1024.0));
}

TEST(GoodputModel, NegativeGnsClampedToZero) {
  GoodputModel model(64.0);
  EXPECT_DOUBLE_EQ(model.efficiency(-50.0, 128.0),
                   model.efficiency(0.0, 128.0));
}

TEST(GoodputModel, GoodputBalancesThroughputAndEfficiency) {
  GoodputModel model(64.0);
  // Linear-time cluster: throughput grows sublinearly past the knee, so
  // goodput must peak at an interior batch when noise is moderate.
  auto batch_time = [](double b) { return 0.05 + 0.0005 * b; };
  const double gns = 800.0;
  const double g_small = model.goodput(gns, 64.0, batch_time(64.0));
  const double g_mid = model.goodput(gns, 1024.0, batch_time(1024.0));
  const double g_huge = model.goodput(gns, 65536.0, batch_time(65536.0));
  EXPECT_GT(g_mid, g_small);
  EXPECT_GT(g_mid, g_huge);
}

TEST(GoodputModel, Validation) {
  EXPECT_THROW(GoodputModel(0.0), std::invalid_argument);
  GoodputModel model(32.0);
  EXPECT_THROW(model.efficiency(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(model.goodput(10.0, 32.0, 0.0), std::invalid_argument);
}

TEST(BatchSizeCandidates, GeometricGridIncludesEndpoints) {
  const auto candidates = batch_size_candidates(64, 4096, 2.0);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates.front(), 64);
  EXPECT_EQ(candidates.back(), 4096);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_GT(candidates[i], candidates[i - 1]);
  }
}

TEST(BatchSizeCandidates, SingletonRange) {
  const auto candidates = batch_size_candidates(64, 64);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], 64);
}

TEST(BatchSizeCandidates, Validation) {
  EXPECT_THROW(batch_size_candidates(0, 10), std::invalid_argument);
  EXPECT_THROW(batch_size_candidates(20, 10), std::invalid_argument);
  EXPECT_THROW(batch_size_candidates(10, 20, 1.0), std::invalid_argument);
}

TEST(SelectBatchSize, PicksGoodputMaximizer) {
  GoodputModel model(64.0);
  const auto candidates = batch_size_candidates(64, 8192, 2.0);
  auto batch_time = [](int b) { return 0.05 + 0.0005 * b; };

  // Low noise: small batches win.
  EXPECT_EQ(select_batch_size(model, 0.0, candidates, batch_time), 64);
  // High noise: larger batch chosen.
  EXPECT_GT(select_batch_size(model, 50000.0, candidates, batch_time), 1024);
}

TEST(SelectBatchSize, GrowsMonotonicallyWithNoise) {
  GoodputModel model(64.0);
  const auto candidates = batch_size_candidates(64, 8192, 1.5);
  auto batch_time = [](int b) { return 0.02 + 0.0004 * b; };
  int previous = 0;
  for (double gns : {0.0, 100.0, 500.0, 2000.0, 10000.0, 100000.0}) {
    const int chosen = select_batch_size(model, gns, candidates, batch_time);
    EXPECT_GE(chosen, previous);
    previous = chosen;
  }
}

TEST(SelectBatchSize, SkipsInvalidTimes) {
  GoodputModel model(64.0);
  const int chosen = select_batch_size(
      model, 100.0, {64, 128, 256},
      [](int b) { return b == 128 ? -1.0 : 0.1; });
  EXPECT_NE(chosen, 128);
  EXPECT_THROW(select_batch_size(model, 1.0, {}, [](int) { return 1.0; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace cannikin::core
