// Tests for the flag parser and the trace CSV export.
#include <gtest/gtest.h>

#include <sstream>

#include "common/flags.h"
#include "experiments/cannikin_system.h"
#include "experiments/harness.h"
#include "experiments/trace_io.h"
#include "sim/cluster_factory.h"
#include "workloads/registry.h"

namespace cannikin {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsAndSpaceForms) {
  const Flags flags = parse({"--alpha=3", "--beta", "7", "--gamma"});
  EXPECT_EQ(flags.get_int("alpha", 0), 3);
  EXPECT_EQ(flags.get_int("beta", 0), 7);
  EXPECT_TRUE(flags.get_bool("gamma"));
  EXPECT_FALSE(flags.has("delta"));
  EXPECT_EQ(flags.get_int("delta", 42), 42);
}

TEST(Flags, PositionalArguments) {
  const Flags flags = parse({"one", "--k=v", "two"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "one");
  EXPECT_EQ(flags.positional()[1], "two");
  EXPECT_EQ(flags.get("k"), "v");
}

TEST(Flags, BooleanBeforeAnotherFlag) {
  const Flags flags = parse({"--verbose", "--count", "4"});
  EXPECT_TRUE(flags.get_bool("verbose"));
  EXPECT_EQ(flags.get_int("count", 0), 4);
}

TEST(Flags, TypedGettersValidate) {
  const Flags flags = parse({"--n=abc", "--x=1.5", "--b=yes"});
  EXPECT_THROW(flags.get_int("n", 0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(flags.get_double("x", 0.0), 1.5);
  EXPECT_TRUE(flags.get_bool("b"));
  EXPECT_THROW(flags.get_bool("x"), std::invalid_argument);
}

TEST(Flags, UnknownKeyDetection) {
  const Flags flags = parse({"--good=1", "--oops=2"});
  const auto unknown = flags.unknown_keys({"good"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "oops");
}

TEST(TraceIo, CsvHasHeaderAndOneRowPerEpoch) {
  const auto& workload = workloads::by_name("cifar10");
  sim::ClusterJob job(sim::cluster_a(), workload.profile, sim::NoiseConfig{},
                      1);
  std::vector<double> caps;
  for (int i = 0; i < job.size(); ++i) caps.push_back(job.max_local_batch(i));
  experiments::CannikinSystem system(job.size(), caps, workload.b0,
                                     workload.max_total_batch);
  experiments::HarnessOptions options;
  options.max_epochs = 5;
  const auto trace = experiments::run_to_target(job, workload, system,
                                                options);

  std::ostringstream out;
  experiments::write_trace_csv(trace, out);
  const std::string csv = out.str();

  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 17), "epoch,total_batch");
  int rows = 0;
  while (std::getline(in, line)) {
    ++rows;
    // Every row has 9 commas (10 fields) and a local-batch list.
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 9);
    EXPECT_NE(line.find('|'), std::string::npos);
  }
  EXPECT_EQ(rows, static_cast<int>(trace.epochs.size()));
}

TEST(TraceIo, SummaryMentionsSystemAndWorkload) {
  experiments::RunTrace trace;
  trace.system = "cannikin";
  trace.workload = "cifar10";
  trace.total_seconds = 12.5;
  trace.reached_target = true;
  const std::string summary = experiments::summarize(trace);
  EXPECT_NE(summary.find("cannikin"), std::string::npos);
  EXPECT_NE(summary.find("cifar10"), std::string::npos);
  EXPECT_NE(summary.find("reached"), std::string::npos);
}

TEST(TraceIo, FileWriteFailureThrows) {
  experiments::RunTrace trace;
  EXPECT_THROW(
      experiments::write_trace_csv(trace, "/nonexistent-dir/trace.csv"),
      std::runtime_error);
}

}  // namespace
}  // namespace cannikin
