// Unit tests for src/comm: process group, collectives, bucketing.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "comm/bucket.h"
#include "comm/collectives.h"
#include "comm/process_group.h"
#include "common/rng.h"

namespace cannikin::comm {
namespace {

// Runs `fn(rank, comm)` on one thread per rank and joins.
template <typename Fn>
void run_ranks(ProcessGroup& group, Fn fn) {
  std::vector<std::thread> threads;
  for (int rank = 0; rank < group.size(); ++rank) {
    threads.emplace_back([&, rank] {
      Communicator comm = group.communicator(rank);
      fn(rank, comm);
    });
  }
  for (auto& t : threads) t.join();
}

TEST(ProcessGroup, BadSizeOrRankThrows) {
  EXPECT_THROW(ProcessGroup(0), CommError);
  ProcessGroup group(2);
  EXPECT_THROW(group.communicator(2), CommError);
  EXPECT_THROW(group.communicator(-1), CommError);
}

TEST(ProcessGroup, PointToPointDelivers) {
  ProcessGroup group(2);
  run_ranks(group, [](int rank, Communicator& comm) {
    if (rank == 0) {
      comm.send(1, 7, {1.0, 2.0, 3.0});
    } else {
      const Payload got = comm.recv(0, 7);
      ASSERT_EQ(got.size(), 3u);
      EXPECT_DOUBLE_EQ(got[2], 3.0);
    }
  });
}

TEST(ProcessGroup, MessagesWithDifferentTagsDoNotMix) {
  ProcessGroup group(2);
  run_ranks(group, [](int rank, Communicator& comm) {
    if (rank == 0) {
      comm.send(1, 1, {1.0});
      comm.send(1, 2, {2.0});
    } else {
      // Receive in reverse send order; tags must route correctly.
      EXPECT_DOUBLE_EQ(comm.recv(0, 2)[0], 2.0);
      EXPECT_DOUBLE_EQ(comm.recv(0, 1)[0], 1.0);
    }
  });
}

TEST(ProcessGroup, BarrierSynchronizesAllRanks) {
  ProcessGroup group(4);
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  run_ranks(group, [&](int, Communicator& comm) {
    before.fetch_add(1);
    comm.barrier();
    if (before.load() != 4) violated = true;
    comm.barrier();  // reusable across generations
  });
  EXPECT_FALSE(violated.load());
}

class RingAllReduceSizes : public ::testing::TestWithParam<
                               std::tuple<int /*ranks*/, int /*elements*/>> {};

TEST_P(RingAllReduceSizes, MatchesNaiveSum) {
  const auto [n, elements] = GetParam();
  ProcessGroup group(n);

  std::vector<std::vector<double>> inputs(static_cast<std::size_t>(n));
  Rng rng(static_cast<std::uint64_t>(n * 1000 + elements));
  std::vector<double> expected(static_cast<std::size_t>(elements), 0.0);
  for (int r = 0; r < n; ++r) {
    auto& input = inputs[static_cast<std::size_t>(r)];
    input.resize(static_cast<std::size_t>(elements));
    for (int e = 0; e < elements; ++e) {
      input[static_cast<std::size_t>(e)] = rng.normal();
      expected[static_cast<std::size_t>(e)] +=
          input[static_cast<std::size_t>(e)];
    }
  }

  run_ranks(group, [&](int rank, Communicator& comm) {
    auto data = inputs[static_cast<std::size_t>(rank)];
    ring_all_reduce(comm, std::span<double>(data), 3);
    for (int e = 0; e < elements; ++e) {
      EXPECT_NEAR(data[static_cast<std::size_t>(e)],
                  expected[static_cast<std::size_t>(e)], 1e-9);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndRanks, RingAllReduceSizes,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7, 8),
                       ::testing::Values(1, 2, 5, 16, 64, 257)));

TEST(RingAllReduce, BufferSmallerThanRanks) {
  // 5 ranks, 2 elements: most ring segments are empty.
  const int n = 5;
  ProcessGroup group(n);
  run_ranks(group, [&](int rank, Communicator& comm) {
    std::vector<double> data{static_cast<double>(rank), 1.0};
    ring_all_reduce(comm, std::span<double>(data), 1);
    EXPECT_DOUBLE_EQ(data[0], 0.0 + 1.0 + 2.0 + 3.0 + 4.0);
    EXPECT_DOUBLE_EQ(data[1], 5.0);
  });
}

TEST(WeightedRingAllReduce, ComputesWeightedSum) {
  const int n = 3;
  ProcessGroup group(n);
  const std::vector<double> weights{0.5, 0.25, 0.25};
  run_ranks(group, [&](int rank, Communicator& comm) {
    std::vector<double> data{static_cast<double>(rank + 1)};
    weighted_ring_all_reduce(comm, std::span<double>(data),
                             weights[static_cast<std::size_t>(rank)], 9);
    EXPECT_NEAR(data[0], 0.5 * 1 + 0.25 * 2 + 0.25 * 3, 1e-12);
  });
}

TEST(Broadcast, RootValueReachesAll) {
  const int n = 4;
  ProcessGroup group(n);
  run_ranks(group, [&](int rank, Communicator& comm) {
    std::vector<double> data;
    if (rank == 2) data = {3.0, 1.0, 4.0};
    broadcast(comm, data, 2, 11);
    ASSERT_EQ(data.size(), 3u);
    EXPECT_DOUBLE_EQ(data[0], 3.0);
    EXPECT_DOUBLE_EQ(data[2], 4.0);
  });
}

TEST(AllGather, ConcatenatesInRankOrderWithUnevenSizes) {
  const int n = 3;
  ProcessGroup group(n);
  run_ranks(group, [&](int rank, Communicator& comm) {
    // Rank r contributes r+1 copies of value r.
    std::vector<double> mine(static_cast<std::size_t>(rank + 1),
                             static_cast<double>(rank));
    const std::vector<double> all = all_gather(comm, mine, 13);
    const std::vector<double> expected{0.0, 1.0, 1.0, 2.0, 2.0, 2.0};
    EXPECT_EQ(all, expected);
  });
}

TEST(AllReduceScalar, SumsAcrossRanks) {
  const int n = 6;
  ProcessGroup group(n);
  run_ranks(group, [&](int rank, Communicator& comm) {
    const double total =
        all_reduce_scalar(comm, static_cast<double>(rank), 17);
    EXPECT_DOUBLE_EQ(total, 15.0);
  });
}

// ---------------------------------------------------------------- buckets

TEST(MakeBuckets, CoversGradientExactlyOnceInReverseOrder) {
  const auto buckets = make_buckets(10, 4);
  ASSERT_EQ(buckets.size(), 3u);
  // Bucket 0 is the tail of the flat gradient (ready first in backprop).
  EXPECT_EQ(buckets[0].offset, 6u);
  EXPECT_EQ(buckets[0].length, 4u);
  EXPECT_EQ(buckets[1].offset, 2u);
  EXPECT_EQ(buckets[1].length, 4u);
  EXPECT_EQ(buckets[2].offset, 0u);
  EXPECT_EQ(buckets[2].length, 2u);

  std::size_t total = 0;
  for (const auto& b : buckets) total += b.length;
  EXPECT_EQ(total, 10u);
}

TEST(MakeBuckets, EdgeCases) {
  EXPECT_TRUE(make_buckets(0, 4).empty());
  EXPECT_EQ(make_buckets(3, 100).size(), 1u);
  EXPECT_THROW(make_buckets(5, 0), std::invalid_argument);
}

TEST(BucketizedWeightedAllReduce, EqualsSingleWeightedAllReduce) {
  const int n = 4;
  const std::size_t elements = 37;
  ProcessGroup group(n);
  const std::vector<double> weights{0.1, 0.2, 0.3, 0.4};

  std::vector<std::vector<double>> inputs(static_cast<std::size_t>(n));
  Rng rng(77);
  std::vector<double> expected(elements, 0.0);
  for (int r = 0; r < n; ++r) {
    auto& input = inputs[static_cast<std::size_t>(r)];
    for (std::size_t e = 0; e < elements; ++e) {
      input.push_back(rng.normal());
      expected[e] += weights[static_cast<std::size_t>(r)] * input[e];
    }
  }

  const auto buckets = make_buckets(elements, 8);
  run_ranks(group, [&](int rank, Communicator& comm) {
    auto data = inputs[static_cast<std::size_t>(rank)];
    bucketized_weighted_all_reduce(comm, std::span<double>(data),
                                   weights[static_cast<std::size_t>(rank)],
                                   buckets, 100);
    for (std::size_t e = 0; e < elements; ++e) {
      EXPECT_NEAR(data[e], expected[e], 1e-10);
    }
  });
}

TEST(BucketizedWeightedAllReduce, OutOfRangeBucketThrows) {
  ProcessGroup group(1);
  Communicator comm = group.communicator(0);
  std::vector<double> data(4, 1.0);
  const std::vector<Bucket> bad{{2, 3}};
  EXPECT_THROW(bucketized_weighted_all_reduce(comm, std::span<double>(data),
                                              1.0, bad, 1),
               std::out_of_range);
}

}  // namespace
}  // namespace cannikin::comm
