// Unit tests for src/common: linear algebra, statistics, RNG.
#include <gtest/gtest.h>

#include <cmath>

#include "common/linalg.h"
#include "common/rng.h"
#include "common/stats.h"

namespace cannikin {
namespace {

// ----------------------------------------------------------------- linalg

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityMultiplicationIsNoop) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix i = Matrix::identity(2);
  EXPECT_EQ(m * i, m);
  EXPECT_EQ(i * m, m);
}

TEST(Matrix, TransposeInvolution) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.transpose(), m);
}

TEST(Matrix, ArithmeticOperators) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  const Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(0, 0), -3.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{1.0, 2.0}};
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Solve, RecoversKnownSolution) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector x = solve(a, Vector{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Solve, RequiresPivoting) {
  // Leading zero forces a row swap.
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vector x = solve(a, Vector{2.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Solve, SingularThrows) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(solve(a, Vector{1.0, 2.0}), SingularMatrixError);
}

TEST(Solve, RandomRoundTrip) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + trial % 8;
    Matrix a(n, n);
    Vector x_true(n);
    for (std::size_t i = 0; i < n; ++i) {
      x_true[i] = rng.normal();
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
      a(i, i) += 3.0;  // keep well conditioned
    }
    const Vector b = a * x_true;
    const Vector x = solve(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST(Inverse, TimesOriginalIsIdentity) {
  Matrix a{{4.0, 7.0}, {2.0, 6.0}};
  const Matrix inv = inverse(a);
  const Matrix product = a * inv;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(product(i, j), i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(VectorOps, DotNormSum) {
  const Vector a{1.0, 2.0, 3.0};
  const Vector b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(sum(a), 6.0);
  EXPECT_THROW(dot(a, {1.0}), std::invalid_argument);
}

// ------------------------------------------------------------------ stats

TEST(RunningMoments, MatchesClosedForm) {
  RunningMoments moments;
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) moments.add(x);
  EXPECT_EQ(moments.count(), xs.size());
  EXPECT_NEAR(moments.mean(), 5.0, 1e-12);
  EXPECT_NEAR(moments.variance(), sample_variance(xs), 1e-12);
}

TEST(RunningMoments, VarianceZeroUntilTwoSamples) {
  RunningMoments moments;
  moments.add(3.0);
  EXPECT_DOUBLE_EQ(moments.variance(), 0.0);
}

TEST(Ema, BiasCorrectedConvergesToConstant) {
  Ema ema(0.2);
  EXPECT_TRUE(ema.empty());
  for (int i = 0; i < 50; ++i) ema.add(4.0);
  EXPECT_NEAR(ema.value(), 4.0, 1e-9);
}

TEST(Ema, FirstSampleIsExact) {
  // Bias correction makes the first value exact, unlike a raw EMA.
  Ema ema(0.1);
  ema.add(10.0);
  EXPECT_NEAR(ema.value(), 10.0, 1e-12);
}

TEST(Ema, BadAlphaThrows) {
  EXPECT_THROW(Ema(0.0), std::invalid_argument);
  EXPECT_THROW(Ema(1.5), std::invalid_argument);
}

TEST(FitLine, ExactLine) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.5 * x + 1.0);
  const auto fit = fit_line(xs, ys);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->slope, 2.5, 1e-12);
  EXPECT_NEAR(fit->intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit->rss, 0.0, 1e-12);
}

TEST(FitLine, DegenerateXReturnsNullopt) {
  EXPECT_FALSE(fit_line({2.0, 2.0}, {1.0, 3.0}).has_value());
  EXPECT_FALSE(fit_line({2.0}, {1.0}).has_value());
}

TEST(FitLine, WeightsPullTowardHeavyPoints) {
  // Two clusters of points on different lines; heavy weights on the
  // first line must dominate the fit.
  const std::vector<double> xs{0.0, 1.0, 0.0, 1.0};
  const std::vector<double> ys{0.0, 1.0, 1.0, 0.0};
  const auto fit = fit_line(xs, ys, {100.0, 100.0, 1.0, 1.0});
  ASSERT_TRUE(fit.has_value());
  EXPECT_GT(fit->slope, 0.9);
}

TEST(FitLine, NonPositiveWeightThrows) {
  EXPECT_THROW(fit_line({1.0, 2.0}, {1.0, 2.0}, {1.0, 0.0}),
               std::invalid_argument);
}

TEST(InverseVarianceCombine, WeightsByPrecision) {
  // Two observations: the combined value must sit closer to the
  // low-variance one, at the textbook position.
  const Observation combined =
      inverse_variance_combine({{10.0, 1.0}, {20.0, 4.0}});
  EXPECT_NEAR(combined.value, (10.0 / 1.0 + 20.0 / 4.0) / (1.0 + 0.25),
              1e-12);
  EXPECT_NEAR(combined.variance, 1.0 / 1.25, 1e-12);
}

TEST(InverseVarianceCombine, ZeroVarianceTreatedAsBest) {
  const Observation combined =
      inverse_variance_combine({{10.0, 0.0}, {20.0, 4.0}});
  // Zero variance borrows the smallest positive variance (4.0), giving
  // equal weights here.
  EXPECT_NEAR(combined.value, 15.0, 1e-12);
}

TEST(InverseVarianceCombine, AllZeroVarianceFallsBackToMean) {
  const Observation combined =
      inverse_variance_combine({{10.0, 0.0}, {20.0, 0.0}});
  EXPECT_NEAR(combined.value, 15.0, 1e-12);
}

TEST(InverseVarianceCombine, LowerVarianceThanMean) {
  // With heteroscedastic inputs, inverse-variance weighting yields a
  // strictly smaller combined variance than plain averaging.
  const std::vector<Observation> obs{{1.0, 1.0}, {2.0, 9.0}, {3.0, 0.25}};
  const Observation ivw = inverse_variance_combine(obs);
  const Observation avg = mean_combine(obs);
  EXPECT_LT(ivw.variance, avg.variance);
}

TEST(Combine, EmptyThrows) {
  EXPECT_THROW(inverse_variance_combine({}), std::invalid_argument);
  EXPECT_THROW(mean_combine({}), std::invalid_argument);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 101.0), std::invalid_argument);
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, ForkIsIndependentButReproducible) {
  Rng a(5), b(5);
  Rng fa = a.fork();
  Rng fb = b.fork();
  EXPECT_DOUBLE_EQ(fa.normal(), fb.normal());
}

TEST(Rng, LognormalJitterHasMedianOne) {
  Rng rng(9);
  std::vector<double> draws;
  for (int i = 0; i < 4001; ++i) draws.push_back(rng.lognormal_jitter(0.3));
  EXPECT_NEAR(percentile(draws, 50.0), 1.0, 0.05);
  EXPECT_DOUBLE_EQ(Rng(1).lognormal_jitter(0.0), 1.0);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

}  // namespace
}  // namespace cannikin
