// Tests for the HetPipe stage partitioner: DP optimality vs brute
// force, structural properties, and the synthetic layer-cost profile.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "baselines/pipeline_partition.h"
#include "common/rng.h"

namespace cannikin::baselines {
namespace {

// Exhaustive min-max partition for small instances.
double brute_force(const std::vector<double>& costs,
                   const std::vector<double>& speeds) {
  const int layers = static_cast<int>(costs.size());
  const int stages = static_cast<int>(speeds.size());
  double best = std::numeric_limits<double>::infinity();

  std::function<void(int, int, double)> recurse = [&](int stage, int begin,
                                                      double worst) {
    if (stage == stages - 1) {
      double sum = 0.0;
      for (int layer = begin; layer < layers; ++layer) sum += costs[layer];
      best = std::min(best,
                      std::max(worst, sum / speeds[static_cast<std::size_t>(
                                                stage)]));
      return;
    }
    double sum = 0.0;
    for (int end = begin + 1; end <= layers - (stages - stage - 1); ++end) {
      sum += costs[static_cast<std::size_t>(end - 1)];
      recurse(stage + 1, end,
              std::max(worst, sum / speeds[static_cast<std::size_t>(stage)]));
    }
  };
  recurse(0, 0, 0.0);
  return best;
}

TEST(PipelinePartition, MatchesBruteForceOnRandomInstances) {
  Rng rng(5);
  for (int trial = 0; trial < 60; ++trial) {
    const int stages = static_cast<int>(rng.uniform_int(1, 4));
    const int layers = static_cast<int>(rng.uniform_int(stages, 9));
    std::vector<double> costs(static_cast<std::size_t>(layers));
    for (auto& c : costs) c = rng.uniform(0.1, 2.0);
    std::vector<double> speeds(static_cast<std::size_t>(stages));
    for (auto& s : speeds) s = rng.uniform(0.3, 3.0);

    const auto dp = partition_pipeline(costs, speeds);
    EXPECT_NEAR(dp.max_stage_time, brute_force(costs, speeds), 1e-12)
        << "trial " << trial;
  }
}

TEST(PipelinePartition, BoundariesAreValidAndReproduceCost) {
  Rng rng(9);
  std::vector<double> costs(20);
  for (auto& c : costs) c = rng.uniform(0.1, 2.0);
  const std::vector<double> speeds{1.0, 2.5, 0.7, 1.4};
  const auto partition = partition_pipeline(costs, speeds);

  ASSERT_EQ(partition.boundaries.size(), speeds.size());
  EXPECT_EQ(partition.boundaries.front(), 0);
  double worst = 0.0;
  for (std::size_t stage = 0; stage < speeds.size(); ++stage) {
    const int begin = partition.boundaries[stage];
    const int end = stage + 1 < speeds.size()
                        ? partition.boundaries[stage + 1]
                        : static_cast<int>(costs.size());
    EXPECT_LT(begin, end);  // every stage owns at least one layer
    double sum = 0.0;
    for (int layer = begin; layer < end; ++layer) {
      sum += costs[static_cast<std::size_t>(layer)];
    }
    worst = std::max(worst, sum / speeds[stage]);
  }
  EXPECT_NEAR(worst, partition.max_stage_time, 1e-12);
}

TEST(PipelinePartition, FasterNodeGetsMoreWork) {
  // Uniform layers, one node 3x faster: its stage must hold more layers.
  const std::vector<double> costs(12, 1.0);
  const auto partition = partition_pipeline(costs, {3.0, 1.0});
  const int first_stage_layers = partition.boundaries[1];
  EXPECT_GT(first_stage_layers, 12 - first_stage_layers);
}

TEST(PipelinePartition, SingleStageTakesEverything) {
  const std::vector<double> costs{1.0, 2.0, 3.0};
  const auto partition = partition_pipeline(costs, {2.0});
  EXPECT_EQ(partition.boundaries, std::vector<int>{0});
  EXPECT_NEAR(partition.max_stage_time, 3.0, 1e-12);
}

TEST(PipelinePartition, Validation) {
  EXPECT_THROW(partition_pipeline({1.0}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(partition_pipeline({1.0, 2.0}, {}), std::invalid_argument);
  EXPECT_THROW(partition_pipeline({1.0, -2.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(partition_pipeline({1.0, 2.0}, {0.0}), std::invalid_argument);
}

TEST(SyntheticLayerCosts, SumsToTotalWithBellShape) {
  const auto costs = synthetic_layer_costs(50, 2.0);
  ASSERT_EQ(costs.size(), 50u);
  double sum = 0.0;
  for (double c : costs) {
    EXPECT_GT(c, 0.0);
    sum += c;
  }
  EXPECT_NEAR(sum, 2.0, 1e-12);
  // Middle layers heavier than the ends.
  EXPECT_GT(costs[25], costs[0]);
  EXPECT_GT(costs[25], costs[49]);
  EXPECT_THROW(synthetic_layer_costs(0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace cannikin::baselines
