// Central finite-difference gradient checks for every layer, run under
// both kernel backends. The loss is sum(output * probe) for a fixed
// random probe, which exercises arbitrary upstream gradients; analytic
// parameter gradients come from copy_grads(), analytic input gradients
// from the tensor backward() returns.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "dnn/kernels/arena.h"
#include "dnn/kernels/kernels.h"
#include "dnn/layers.h"
#include "dnn/layers_extra.h"

namespace cannikin::dnn {
namespace {

constexpr double kEps = 1e-5;
constexpr double kTol = 1e-4;

Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng) {
  Tensor t(shape);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = rng.normal();
  return t;
}

double probe_loss(Layer& layer, const Tensor& x, const Tensor& probe) {
  const Tensor out = layer.forward(x);
  double total = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) total += out[i] * probe[i];
  return total;
}

// Checks dLoss/dParams (when the layer has parameters) and optionally
// dLoss/dInput against central differences. `ctx` may be null (naive
// reference) or point at an optimized-backend context.
void check_layer(Layer& layer, const Tensor& input,
                 const kernels::Context* ctx, bool check_input = true) {
  layer.set_context(ctx);
  Rng prng(99);
  Tensor probe = layer.forward(input);
  for (std::size_t i = 0; i < probe.size(); ++i) probe[i] = prng.normal();

  layer.zero_grads();
  layer.forward(input);
  const Tensor analytic_input = layer.backward(probe);

  if (layer.num_params() > 0) {
    std::vector<double> analytic(layer.num_params());
    layer.copy_grads(analytic);
    std::vector<double> params(layer.num_params());
    layer.copy_params(params);
    const std::size_t stride =
        std::max<std::size_t>(1, params.size() / 25);  // probe ~25 params
    for (std::size_t p = 0; p < params.size(); p += stride) {
      std::vector<double> bumped = params;
      bumped[p] += kEps;
      layer.set_params(bumped);
      const double up = probe_loss(layer, input, probe);
      bumped[p] -= 2 * kEps;
      layer.set_params(bumped);
      const double down = probe_loss(layer, input, probe);
      layer.set_params(params);
      EXPECT_NEAR(analytic[p], (up - down) / (2 * kEps), kTol)
          << "param " << p;
    }
  }

  if (check_input) {
    const std::size_t stride =
        std::max<std::size_t>(1, input.size() / 20);
    for (std::size_t i = 0; i < input.size(); i += stride) {
      Tensor bumped = input;
      bumped[i] += kEps;
      const double up = probe_loss(layer, bumped, probe);
      bumped[i] -= 2 * kEps;
      const double down = probe_loss(layer, bumped, probe);
      EXPECT_NEAR(analytic_input[i], (up - down) / (2 * kEps), kTol)
          << "input " << i;
    }
  }
  layer.set_context(nullptr);
}

// Every check runs twice: against the naive reference semantics and
// against the optimized backend with an arena-backed workspace.
template <typename MakeLayer, typename MakeInput>
void check_under_both_backends(MakeLayer make_layer, MakeInput make_input,
                               bool check_input = true) {
  {
    auto layer = make_layer();
    check_layer(*layer, make_input(), nullptr, check_input);
  }
  {
    kernels::Arena arena;
    const kernels::Context ctx{
        &kernels::kernel(kernels::KernelKind::kOptimized), nullptr,
        arena.resource()};
    auto layer = make_layer();
    check_layer(*layer, make_input(), &ctx, check_input);
  }
}

TEST(GradCheck, LinearPlain) {
  check_under_both_backends(
      [] {
        Rng rng(1);
        auto layer = std::make_unique<Linear>(5, 4);
        layer->init(rng);
        return layer;
      },
      [] {
        Rng rng(11);
        return random_tensor({3, 5}, rng);
      });
}

TEST(GradCheck, LinearFusedReLU) {
  check_under_both_backends(
      [] {
        Rng rng(2);
        auto layer =
            std::make_unique<Linear>(6, 5, kernels::Activation::kReLU);
        layer->init(rng);
        return layer;
      },
      [] {
        Rng rng(12);
        return random_tensor({4, 6}, rng);
      });
}

TEST(GradCheck, LinearFusedTanh) {
  check_under_both_backends(
      [] {
        Rng rng(3);
        auto layer =
            std::make_unique<Linear>(4, 7, kernels::Activation::kTanh);
        layer->init(rng);
        return layer;
      },
      [] {
        Rng rng(13);
        return random_tensor({3, 4}, rng);
      });
}

TEST(GradCheck, LinearBatchOne) {
  check_under_both_backends(
      [] {
        Rng rng(4);
        auto layer =
            std::make_unique<Linear>(9, 3, kernels::Activation::kReLU);
        layer->init(rng);
        return layer;
      },
      [] {
        Rng rng(14);
        return random_tensor({1, 9}, rng);
      });
}

TEST(GradCheck, ReLUStandalone) {
  check_under_both_backends([] { return std::make_unique<ReLU>(); },
                            [] {
                              Rng rng(15);
                              return random_tensor({4, 6}, rng);
                            });
}

TEST(GradCheck, TanhStandalone) {
  check_under_both_backends([] { return std::make_unique<Tanh>(); },
                            [] {
                              Rng rng(16);
                              return random_tensor({4, 6}, rng);
                            });
}

TEST(GradCheck, Conv2dValid) {
  check_under_both_backends(
      [] {
        Rng rng(5);
        auto layer = std::make_unique<Conv2d>(2, 3, 3, 0);
        layer->init(rng);
        return layer;
      },
      [] {
        Rng rng(17);
        return random_tensor({2, 2, 5, 5}, rng);
      });
}

TEST(GradCheck, Conv2dSamePadding) {
  check_under_both_backends(
      [] {
        Rng rng(6);
        auto layer = std::make_unique<Conv2d>(2, 3, 3, 1);
        layer->init(rng);
        return layer;
      },
      [] {
        Rng rng(18);
        return random_tensor({2, 2, 6, 6}, rng);
      });
}

TEST(GradCheck, AvgPool) {
  check_under_both_backends([] { return std::make_unique<AvgPool2x2>(); },
                            [] {
                              Rng rng(19);
                              return random_tensor({2, 3, 4, 4}, rng);
                            });
}

TEST(GradCheck, MaxPool) {
  check_under_both_backends(
      [] { return std::make_unique<MaxPool2x2>(); },
      [] {
        // Distinct values: a finite-difference bump must never flip
        // the argmax, which would make the loss non-differentiable.
        Rng rng(20);
        Tensor t({2, 2, 4, 4});
        std::vector<std::size_t> order(t.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        rng.shuffle(order);
        for (std::size_t i = 0; i < t.size(); ++i) {
          t[i] = static_cast<double>(order[i]) * 0.1;
        }
        return t;
      });
}

TEST(GradCheck, Flatten) {
  check_under_both_backends([] { return std::make_unique<Flatten>(); },
                            [] {
                              Rng rng(21);
                              return random_tensor({2, 3, 2, 2}, rng);
                            });
}

TEST(GradCheck, EmbeddingParamsOnly) {
  // Ids are not differentiable: parameter gradients only.
  check_under_both_backends(
      [] {
        Rng rng(7);
        auto layer = std::make_unique<Embedding>(6, 3);
        layer->init(rng);
        return layer;
      },
      [] {
        Tensor ids = Tensor::matrix(2, 2);
        ids.at(0, 0) = 1;
        ids.at(0, 1) = 4;
        ids.at(1, 0) = 4;  // repeated row: accumulated gradient
        ids.at(1, 1) = 0;
        return ids;
      },
      /*check_input=*/false);
}

TEST(GradCheck, LayerNorm) {
  check_under_both_backends(
      [] {
        Rng rng(8);
        auto layer = std::make_unique<LayerNorm>(6);
        layer->init(rng);
        return layer;
      },
      [] {
        Rng rng(22);
        return random_tensor({3, 6}, rng);
      });
}

TEST(GradCheck, DropoutEvalIsIdentity) {
  check_under_both_backends(
      [] {
        auto layer = std::make_unique<Dropout>(0.4, 5);
        layer->set_training(false);
        return layer;
      },
      [] {
        Rng rng(23);
        return random_tensor({3, 5}, rng);
      });
}

TEST(GradCheck, DropoutTrainingMask) {
  // The training-mode rng advances per forward, so finite differences
  // rebuild a fresh layer (same seed -> same mask) per evaluation.
  Rng rng(24);
  const Tensor input = random_tensor({3, 5}, rng);
  Dropout analytic_layer(0.4, 77);
  Tensor probe = analytic_layer.forward(input);
  Rng prng(99);
  for (std::size_t i = 0; i < probe.size(); ++i) probe[i] = prng.normal();

  Dropout fresh(0.4, 77);
  fresh.forward(input);
  const Tensor analytic = fresh.backward(probe);

  auto loss_at = [&](const Tensor& x) {
    Dropout layer(0.4, 77);
    const Tensor out = layer.forward(x);
    double total = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) total += out[i] * probe[i];
    return total;
  };
  for (std::size_t i = 0; i < input.size(); ++i) {
    Tensor bumped = input;
    bumped[i] += kEps;
    const double up = loss_at(bumped);
    bumped[i] -= 2 * kEps;
    const double down = loss_at(bumped);
    EXPECT_NEAR(analytic[i], (up - down) / (2 * kEps), kTol) << "input " << i;
  }
}

}  // namespace
}  // namespace cannikin::dnn
