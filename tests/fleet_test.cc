// Fleet scheduler surface: Allocation value-type properties
// (diff/apply round trip, one-owner invariant), JobSpec/FleetSim input
// validation, policy behavior (FIFO queueing, goodput packing),
// checkpoint-safe preemption (zero bootstrap epochs, counted as
// preemption rather than fault), and seeded whole-run determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sched/allocation.h"
#include "sched/fault_recovery.h"
#include "sched/fleet.h"
#include "sched/policy.h"
#include "sched/supervisor.h"
#include "sim/cluster_factory.h"
#include "workloads/registry.h"

namespace cannikin::sched {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------ Allocation

TEST(Allocation, ConstructionAndAccessValidation) {
  EXPECT_THROW(Allocation(0), std::invalid_argument);
  EXPECT_THROW(Allocation(-3), std::invalid_argument);

  Allocation allocation(4);
  EXPECT_EQ(allocation.num_nodes(), 4);
  EXPECT_TRUE(allocation.empty());
  EXPECT_THROW(allocation.job_of(-1), std::invalid_argument);
  EXPECT_THROW(allocation.job_of(4), std::invalid_argument);
  EXPECT_THROW(allocation.assign(-1, {0}), std::invalid_argument);
  EXPECT_THROW(allocation.assign(0, {7}), std::invalid_argument);
}

TEST(Allocation, OneOwnerPerNodeIsEnforced) {
  Allocation allocation(4);
  allocation.assign(0, {0, 1});
  // Claiming node 1 for job 2 without releasing job 0 must throw.
  EXPECT_THROW(allocation.assign(2, {1, 2}), std::logic_error);
  // Re-assigning a job its own node is fine (grow in place).
  allocation.assign(0, {0, 1, 2});
  EXPECT_EQ(allocation.size_of(0), 3);
  allocation.release(0);
  allocation.assign(2, {1, 2});
  EXPECT_EQ(allocation.job_of(0), kNoJob);
  EXPECT_EQ(allocation.job_of(1), 2);
}

// Random allocation over `num_nodes` nodes and jobs 0..num_jobs-1.
Allocation random_allocation(Rng& rng, int num_nodes, int num_jobs) {
  Allocation allocation(num_nodes);
  std::map<JobId, std::vector<int>> nodes;
  for (int node = 0; node < num_nodes; ++node) {
    const JobId owner =
        static_cast<JobId>(rng.uniform_int(-1, num_jobs - 1));
    if (owner >= 0) nodes[owner].push_back(node);
  }
  for (const auto& [job, ids] : nodes) allocation.assign(job, ids);
  return allocation;
}

TEST(Allocation, DiffApplyRoundTripProperty) {
  Rng rng(2026);
  for (int iteration = 0; iteration < 300; ++iteration) {
    const int num_nodes = static_cast<int>(rng.uniform_int(1, 12));
    const int num_jobs = static_cast<int>(rng.uniform_int(1, 5));
    const Allocation source = random_allocation(rng, num_nodes, num_jobs);
    const Allocation target = random_allocation(rng, num_nodes, num_jobs);

    const AllocationDelta delta = source.diff(target);
    Allocation applied = source;
    applied.apply(delta);
    ASSERT_EQ(applied, target)
        << "iteration " << iteration << ": " << source.to_string() << " -> "
        << target.to_string();
    // Jobs absent from the delta are exactly the unchanged ones.
    for (const auto& change : delta.changes) {
      ASSERT_NE(change.before, change.after);
      ASSERT_EQ(change.before, source.nodes_of(change.job));
      ASSERT_EQ(change.after, target.nodes_of(change.job));
    }
    // diff of equal allocations is empty; re-applying is a no-op.
    ASSERT_TRUE(applied.diff(target).empty());
  }
}

TEST(Allocation, ApplyRejectsStaleDelta) {
  Allocation source(4);
  source.assign(0, {0, 1});
  Allocation target(4);
  target.assign(0, {0, 1, 2, 3});
  const AllocationDelta delta = source.diff(target);

  Allocation drifted = source;
  drifted.release(0);
  drifted.assign(1, {0});
  EXPECT_THROW(drifted.apply(delta), std::logic_error);
}

TEST(Allocation, RandomOpsKeepBothDirectionsConsistent) {
  Rng rng(7);
  Allocation allocation(10);
  std::map<int, JobId> model;  // node -> owner
  for (int step = 0; step < 500; ++step) {
    const JobId job = static_cast<JobId>(rng.uniform_int(0, 4));
    if (rng.bernoulli(0.35)) {
      allocation.release(job);
      for (auto it = model.begin(); it != model.end();) {
        it = it->second == job ? model.erase(it) : std::next(it);
      }
    } else {
      std::vector<int> nodes;
      for (int node = 0; node < 10; ++node) {
        const auto owner = model.find(node);
        const bool mine = owner != model.end() && owner->second == job;
        const bool free = owner == model.end();
        if ((mine || free) && rng.bernoulli(0.3)) nodes.push_back(node);
      }
      allocation.assign(job, nodes);
      for (int node : nodes) model[node] = job;
    }
    // Forward and reverse mappings agree with the model.
    int owned = 0;
    for (int node = 0; node < 10; ++node) {
      const auto owner = model.find(node);
      ASSERT_EQ(allocation.job_of(node),
                owner == model.end() ? kNoJob : owner->second);
      if (owner != model.end()) ++owned;
    }
    int total = 0;
    for (JobId job_id : allocation.jobs()) {
      for (int node : allocation.nodes_of(job_id)) {
        ASSERT_EQ(allocation.job_of(node), job_id);
      }
      total += allocation.size_of(job_id);
    }
    ASSERT_EQ(total, owned);  // node sets are disjoint and complete
  }
}

// ----------------------------------------------------- packer properties

TEST(FleetPacker, MinNodesRespectedAndSubsetConfined) {
  GoodputScheduler scheduler(sim::cluster_b());
  const std::vector<SchedulerJobInfo> jobs{
      {&workloads::by_name("cifar10"), 500.0, 3},
      {&workloads::by_name("imagenet"), 1000.0, 2},
  };
  const std::vector<int> pool{2, 3, 5, 7, 11, 13};
  const Allocation allocation = scheduler.allocate_subset(jobs, pool);
  EXPECT_GE(allocation.size_of(0), 3);
  EXPECT_GE(allocation.size_of(1), 2);
  for (JobId job : allocation.jobs()) {
    for (int node : allocation.nodes_of(job)) {
      EXPECT_NE(std::find(pool.begin(), pool.end(), node), pool.end())
          << "node " << node << " outside the requested subset";
    }
  }
}

TEST(FleetPacker, Validation) {
  GoodputScheduler scheduler(sim::cluster_a());
  EXPECT_THROW(
      scheduler.allocate({{&workloads::by_name("cifar10"), 100.0, 0}}),
      std::invalid_argument);
  EXPECT_THROW(scheduler.allocate({{nullptr, 100.0, 1}}),
               std::invalid_argument);
  // min_nodes demand exceeding the pool is an error, not a silent drop.
  EXPECT_THROW(
      scheduler.allocate({{&workloads::by_name("cifar10"), 100.0, 5}}),
      std::invalid_argument);
  EXPECT_THROW(scheduler.allocate_subset(
                   {{&workloads::by_name("cifar10"), 100.0, 1}}, {99}),
               std::invalid_argument);
}

// ------------------------------------------------------------ validation

TEST(FleetValidation, JobSpecRejectsBadFields) {
  JobSpec spec;
  spec.workload = &workloads::by_name("cifar10");
  spec.validate();  // defaults are fine

  JobSpec null_workload = spec;
  null_workload.workload = nullptr;
  EXPECT_THROW(null_workload.validate(), std::invalid_argument);

  JobSpec bad_min = spec;
  bad_min.min_nodes = 0;
  EXPECT_THROW(bad_min.validate(), std::invalid_argument);

  JobSpec zero_target = spec;
  zero_target.target_fraction = 0.0;
  EXPECT_THROW(zero_target.validate(), std::invalid_argument);
  zero_target.target_fraction = 1.5;
  EXPECT_THROW(zero_target.validate(), std::invalid_argument);

  JobSpec bad_preferred = spec;
  bad_preferred.preferred_nodes = -2;
  EXPECT_THROW(bad_preferred.validate(), std::invalid_argument);

  JobSpec bad_deadline = spec;
  bad_deadline.deadline_hint_seconds = -1.0;
  EXPECT_THROW(bad_deadline.validate(), std::invalid_argument);
}

TEST(FleetValidation, FleetSimRejectsBadInputs) {
  EXPECT_THROW(FleetSim(sim::ClusterSpec{}, std::make_unique<FifoPolicy>()),
               std::invalid_argument);
  EXPECT_THROW(FleetSim(sim::cluster_a(), nullptr), std::invalid_argument);

  FleetOptions bad_epochs;
  bad_epochs.max_epochs_per_job = 0;
  EXPECT_THROW(
      FleetSim(sim::cluster_a(), std::make_unique<FifoPolicy>(), bad_epochs),
      std::invalid_argument);

  FleetSim fleet(sim::cluster_a(), std::make_unique<FifoPolicy>());
  EXPECT_THROW(fleet.run(), std::invalid_argument);  // no jobs

  JobSpec spec;
  spec.workload = &workloads::by_name("cifar10");
  EXPECT_THROW(fleet.submit(spec, -1.0), std::invalid_argument);
  JobSpec too_big = spec;
  too_big.min_nodes = 99;
  EXPECT_THROW(fleet.submit(too_big), std::invalid_argument);
  EXPECT_THROW(poisson_arrivals({spec}, 0.0, 1), std::invalid_argument);
}

TEST(FleetValidation, PolicyConstructorsReject) {
  EXPECT_THROW(FifoPolicy(0), std::invalid_argument);
  EXPECT_THROW(StaticPartitionPolicy(4, 0), std::invalid_argument);
  EXPECT_THROW(StaticPartitionPolicy(4, 5), std::invalid_argument);
  GoodputGreedyOptions bad;
  bad.max_concurrent = -1;
  EXPECT_THROW(GoodputGreedyPolicy(sim::cluster_a(), bad),
               std::invalid_argument);
}

// --------------------------------------------------------------- arrivals

TEST(FleetArrivals, PoissonTraceIsSeededAndOrdered) {
  std::vector<JobSpec> specs(5);
  for (auto& spec : specs) spec.workload = &workloads::by_name("cifar10");
  const auto a = poisson_arrivals(specs, 60.0, 99);
  const auto b = poisson_arrivals(specs, 60.0, 99);
  const auto c = poisson_arrivals(specs, 60.0, 100);
  ASSERT_EQ(a.size(), 5u);
  double prev = 0.0;
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
    EXPECT_GE(a[i].time, prev);
    prev = a[i].time;
    differs = differs || a[i].time != c[i].time;
  }
  EXPECT_TRUE(differs);  // different seed, different trace
}

// ------------------------------------------------------------------ FIFO

TEST(FleetFifo, QueuesBehindTheHeadAndNeverPreempts) {
  FleetOptions options;
  options.seed = 5;
  options.max_epochs_per_job = 400;

  FleetSim fleet(sim::cluster_a(), std::make_unique<FifoPolicy>(4), options);
  JobSpec spec;
  spec.workload = &workloads::by_name("cifar10");
  spec.target_fraction = 0.05;
  spec.preferred_nodes = 4;  // each job wants the whole cluster
  fleet.submit(spec, 0.0);
  fleet.submit(spec, 1.0);

  const FleetResult result = fleet.run();
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_EQ(result.completed_jobs, 2);
  EXPECT_EQ(result.preemptions, 0);
  // The second job had to wait for the first to free the cluster.
  EXPECT_GT(result.jobs[1].queueing_delay, 0.0);
  EXPECT_GE(result.jobs[1].start_time, result.jobs[0].finish_time);
  EXPECT_GT(result.fleet_goodput, 0.0);
  EXPECT_GT(result.mean_queueing_delay, 0.0);
}

// ----------------------------------------------- checkpoint-safe preempt

class FleetPreemption : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("cannikin-fleet-test-" +
             std::to_string(
                 ::testing::UnitTest::GetInstance()->random_seed())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string dir_;
};

TEST_F(FleetPreemption, SupervisorResumeIsWarmAndCountsAsPreemption) {
  SupervisorOptions options;
  options.checkpoint_dir = dir_;
  options.checkpoint_every_epochs = 0;  // manual checkpoints only
  TrainingSupervisor supervisor(&workloads::by_name("cifar10"),
                                sim::cluster_b(), sim::NoiseConfig{}, 3,
                                options);
  supervisor.start({0, 4, 8});
  for (int epoch = 0; epoch < 4; ++epoch) supervisor.job().run_epoch();
  supervisor.checkpoint_now();
  const int checkpointed_epochs = supervisor.job().epochs_run();
  // Two more epochs that the preemption will roll back.
  supervisor.job().run_epoch();
  supervisor.job().run_epoch();

  supervisor.preempt();
  EXPECT_TRUE(supervisor.preempted());
  EXPECT_FALSE(supervisor.has_job());
  EXPECT_EQ(supervisor.stats().preemptions, 1);
  EXPECT_EQ(supervisor.stats().epochs_lost_to_preemption, 2);

  // Resume on *different* nodes of the same hardware types: a
  // migration. The banked models cover them, so the controller
  // warm-starts with zero bootstrap epochs.
  supervisor.resume({1, 5, 9});
  ASSERT_TRUE(supervisor.has_job());
  EXPECT_EQ(supervisor.job().epochs_run(), checkpointed_epochs);  // rollback
  EXPECT_EQ(supervisor.job().allocation(), (std::vector<int>{1, 5, 9}));
  ASSERT_EQ(supervisor.preemption_reports().size(), 1u);
  EXPECT_TRUE(supervisor.preemption_reports()[0].preemption);
  EXPECT_TRUE(supervisor.preemption_reports()[0].warm);  // no bootstrap
  EXPECT_GT(supervisor.stats().preemption_restore_seconds, 0.0);

  // Double-resume and preempt-without-job are rejected.
  EXPECT_THROW(supervisor.resume({0}), std::logic_error);

  // A fault run after the preemption reports it in the trace under the
  // preemption flag -- and recovery_metrics must NOT treat it as a
  // fault onset.
  sim::FaultInjector quiet;
  const FaultRecoveryTrace trace = supervisor.run(quiet, 3);
  EXPECT_EQ(trace.preemptions, 1);
  EXPECT_EQ(trace.epochs_lost_to_preemption, 2);
  int preemption_reports = 0;
  for (const auto& report : trace.recoveries) {
    preemption_reports += report.preemption ? 1 : 0;
  }
  EXPECT_EQ(preemption_reports, 1);
  EXPECT_TRUE(recovery_metrics(trace).empty());
}

// A deliberately adversarial policy: every arrival takes the whole
// cluster, evicting whoever holds it; every finish hands the cluster
// to the lowest unfinished job. Exercises FleetSim's preempt/resume
// machinery deterministically (and demonstrates that policies are a
// single-class extension point).
class EvictNewestWinsPolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "evict-newest-wins"; }
  Allocation on_job_arrival(const FleetState& state, JobId arrived) override {
    Allocation target(state.cluster->size());
    std::vector<int> all(static_cast<std::size_t>(state.cluster->size()));
    for (int node = 0; node < state.cluster->size(); ++node) {
      all[static_cast<std::size_t>(node)] = node;
    }
    target.assign(arrived, all);
    return target;
  }
  Allocation on_job_finish(const FleetState& state, JobId) override {
    Allocation target(state.cluster->size());
    if (state.jobs.empty()) return target;
    std::vector<int> all(static_cast<std::size_t>(state.cluster->size()));
    for (int node = 0; node < state.cluster->size(); ++node) {
      all[static_cast<std::size_t>(node)] = node;
    }
    target.assign(state.jobs.front().id, all);
    return target;
  }
};

TEST_F(FleetPreemption, FleetPreemptsMidEpochAndResumesFromCheckpoint) {
  FleetOptions options;
  options.seed = 11;
  options.max_epochs_per_job = 400;
  options.checkpoint_every_epochs = 2;
  options.checkpoint_root = dir_;
  options.preemption_cost_seconds = 5.0;

  FleetSim fleet(sim::cluster_a(), std::make_unique<EvictNewestWinsPolicy>(),
                 options);
  JobSpec spec;
  spec.workload = &workloads::by_name("cifar10");
  spec.target_fraction = 0.04;
  // Job 0 starts at t=0 on the whole cluster; job 1 lands mid-epoch and
  // evicts it; job 0 resumes from its checkpoint when job 1 finishes.
  fleet.submit(spec, 0.0);
  fleet.submit(spec, 1.0);

  const FleetResult result = fleet.run();
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_EQ(result.completed_jobs, 2);
  EXPECT_EQ(result.preemptions, 1);
  EXPECT_EQ(result.jobs[0].preemptions, 1);
  EXPECT_EQ(result.jobs[1].preemptions, 0);
  // The modeled resume penalty was charged.
  EXPECT_DOUBLE_EQ(result.preemption_overhead_seconds, 5.0);
  // Job 0 was mid-epoch with only the epoch-0 checkpoint durable: the
  // aborted epoch never committed, so nothing counts as lost beyond
  // what the checkpoint missed.
  EXPECT_GE(result.epochs_lost_to_preemption, 0);
  EXPECT_GT(result.checkpoints_written, 2);
  // Preempted job still finished after resume -- later than the evictor.
  EXPECT_GT(result.jobs[0].finish_time, result.jobs[1].finish_time);
}

// ---------------------------------------------------------- determinism

std::vector<JobArrival> mixed_trace(int jobs, std::uint64_t seed) {
  const std::vector<const workloads::Workload*> catalog{
      &workloads::by_name("cifar10"), &workloads::by_name("movielens"),
      &workloads::by_name("imagenet")};
  std::vector<JobSpec> specs;
  Rng rng(seed);
  for (int i = 0; i < jobs; ++i) {
    JobSpec spec;
    spec.workload = catalog[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(catalog.size()) - 1))];
    spec.target_fraction = 0.02 + 0.02 * rng.uniform();
    spec.priority = static_cast<int>(rng.uniform_int(0, 2));
    spec.min_nodes = 1;
    specs.push_back(spec);
  }
  return poisson_arrivals(std::move(specs), 40.0, seed + 1);
}

FleetResult run_goodput_fleet(const std::vector<JobArrival>& trace,
                              const std::string& root) {
  FleetOptions options;
  options.seed = 17;
  options.max_epochs_per_job = 400;
  options.checkpoint_every_epochs = 3;
  options.checkpoint_root = root;
  options.rebalance_interval_seconds = 500.0;
  FleetSim fleet(sim::cluster_b(),
                 std::make_unique<GoodputGreedyPolicy>(sim::cluster_b()),
                 options);
  fleet.submit(trace);
  return fleet.run();
}

TEST_F(FleetPreemption, SameSeedSameTraceGivesIdenticalMetrics) {
  const auto trace = mixed_trace(8, 123);
  const FleetResult first = run_goodput_fleet(trace, dir_ + "/a");
  const FleetResult second = run_goodput_fleet(trace, dir_ + "/b");

  const auto lhs = first.metrics();
  const auto rhs = second.metrics();
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    ASSERT_EQ(lhs[i].first, rhs[i].first);
    if (lhs[i].first.rfind("measured_", 0) == 0) continue;  // wall clock
    EXPECT_DOUBLE_EQ(lhs[i].second, rhs[i].second) << lhs[i].first;
  }
  EXPECT_EQ(first.completed_jobs, static_cast<int>(trace.size()));
  // Virtual-time metrics are pure functions of (trace, policy, seed).
  for (std::size_t i = 0; i < first.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(first.jobs[i].completion_seconds,
                     second.jobs[i].completion_seconds);
    EXPECT_EQ(first.jobs[i].epochs, second.jobs[i].epochs);
    EXPECT_EQ(first.jobs[i].preemptions, second.jobs[i].preemptions);
  }
}

}  // namespace
}  // namespace cannikin::sched
