// Tests for gradient accumulation: the solver's accumulated plans, the
// simulator's no_sync micro-step timing, and the controller growing the
// batch past the cluster's memory capacity.
#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/optperf.h"
#include "experiments/cannikin_system.h"
#include "experiments/harness.h"
#include "sim/cluster_factory.h"
#include "workloads/registry.h"

namespace cannikin {
namespace {

core::OptPerfSolver truth_solver(const sim::ClusterJob& job) {
  std::vector<core::NodeModel> models;
  for (int i = 0; i < job.size(); ++i) {
    const auto& t = job.truth(i);
    models.push_back(
        {t.q, t.s, t.k, t.m, static_cast<double>(t.max_local_batch)});
  }
  return core::OptPerfSolver(
      models, {job.gamma(), job.comm().t_other, job.comm().t_last});
}

TEST(SolveAccumulated, WithinMemoryPrefersSingleStep) {
  // SQuAD's heavy fixed costs mean extra micro-steps only add time.
  // Cluster A's memory caps the per-step batch at ~63 samples for BERT,
  // so probe below that.
  sim::ClusterJob job(sim::cluster_a(), workloads::by_name("squad").profile,
                      sim::NoiseConfig::none(), 1);
  const auto solver = truth_solver(job);
  ASSERT_GT(solver.cap_sum(), 48.0);
  const auto plan = solver.solve_accumulated(48, 4);
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.steps, 1);
  EXPECT_NEAR(plan.step_time, solver.solve(48).batch_time, 1e-12);
}

TEST(SolveAccumulated, BeyondMemoryUsesEnoughSteps) {
  sim::ClusterJob job(sim::cluster_a(), workloads::by_name("squad").profile,
                      sim::NoiseConfig::none(), 1);
  const auto solver = truth_solver(job);
  const double caps = solver.cap_sum();
  ASSERT_LT(caps, 200.0);  // cluster A is genuinely memory-tight for BERT

  const int total = static_cast<int>(2.5 * caps);
  const auto plan = solver.solve_accumulated(total, 4);
  EXPECT_TRUE(plan.feasible);
  EXPECT_GE(plan.steps, 3);  // ceil(2.5) micro-steps at least
  EXPECT_LE(plan.micro_total, static_cast<int>(caps) + 1);
  // Step time: (m-1) compute-only micro-batches + one overlapped one.
  EXPECT_GT(plan.step_time, solver.solve(plan.micro_total).batch_time);
}

TEST(SolveAccumulated, StepTimeMatchesSimulatedNoSyncTiming) {
  sim::ClusterJob job(sim::cluster_a(), workloads::by_name("squad").profile,
                      sim::NoiseConfig::none(), 1);
  const auto solver = truth_solver(job);
  const auto plan = solver.solve_accumulated(
      static_cast<int>(2.0 * solver.cap_sum()), 4);

  const auto obs =
      job.run_epoch(plan.micro.local_batches_int, 3, plan.steps);
  // Continuous-vs-integer rounding is the only slack.
  EXPECT_NEAR(obs.avg_batch_time, plan.step_time, 0.02 * plan.step_time);
}

TEST(SolveAccumulated, Validation) {
  sim::ClusterJob job(sim::cluster_a(), workloads::by_name("squad").profile,
                      sim::NoiseConfig::none(), 1);
  const auto solver = truth_solver(job);
  EXPECT_THROW(solver.solve_accumulated(0.0), std::invalid_argument);
  EXPECT_THROW(solver.solve_accumulated(10.0, 0), std::invalid_argument);
  // Unreachable batch: flagged infeasible, best-effort plan returned.
  const auto plan = solver.solve_accumulated(100.0 * solver.cap_sum(), 2);
  EXPECT_FALSE(plan.feasible);
}

TEST(RunEpoch, AccumulationAddsComputeOnlyMicroSteps) {
  sim::ClusterJob job(sim::cluster_a(), workloads::by_name("squad").profile,
                      sim::NoiseConfig::none(), 1);
  const std::vector<int> micro{40, 30, 15};
  const auto plain = job.run_epoch(micro, 2, 1);
  const auto accumulated = job.run_epoch(micro, 2, 3);

  double compute = 0.0;
  for (int i = 0; i < job.size(); ++i) {
    compute = std::max(
        compute, job.truth(i).compute(micro[static_cast<std::size_t>(i)]));
  }
  EXPECT_NEAR(accumulated.avg_batch_time,
              plain.avg_batch_time + 2.0 * compute, 1e-9);
  EXPECT_THROW(job.run_epoch(micro, 2, 0), std::invalid_argument);
}

TEST(Controller, GrowsBatchPastMemoryWithAccumulation) {
  // BERT on cluster A: memory caps the per-step batch at ~105 samples,
  // but late-training GNS justifies a larger one. With accumulation the
  // controller must exceed the memory bound; without it, it cannot.
  const auto& workload = workloads::by_name("squad");
  sim::ClusterJob job(sim::cluster_a(), workload.profile,
                      sim::NoiseConfig::none(), 1);
  std::vector<double> caps;
  double cap_sum = 0.0;
  for (int i = 0; i < job.size(); ++i) {
    caps.push_back(job.max_local_batch(i));
    cap_sum += caps.back();
  }

  auto run = [&](int max_accumulation) {
    core::ControllerOptions options;
    options.initial_total_batch = workload.b0;
    options.max_total_batch = workload.max_total_batch;
    options.max_accumulation_steps = max_accumulation;
    core::CannikinController controller(job.size(), caps, options);
    int last_total = 0;
    for (int epoch = 0; epoch < 8; ++epoch) {
      controller.update_gns_value(1e6);  // huge noise: wants max batch
      const auto plan = controller.plan_epoch();
      last_total = plan.total_batch;
      const auto obs = job.run_epoch(plan.local_batches, 8,
                                     plan.accumulation_steps);
      std::vector<int> b;
      std::vector<double> a, p, g, to, tu;
      for (const auto& node : obs.nodes) {
        b.push_back(node.local_batch);
        a.push_back(node.a);
        p.push_back(node.p);
        g.push_back(node.gamma);
        to.push_back(node.t_other);
        tu.push_back(node.t_last);
      }
      controller.observe_epoch(b, a, p, g, to, tu);
    }
    return last_total;
  };

  EXPECT_LE(run(1), static_cast<int>(cap_sum));
  EXPECT_GT(run(4), static_cast<int>(cap_sum));
}

TEST(Harness, AccumulatedRunReachesTargetOnMemoryTightCluster) {
  const auto& workload = workloads::by_name("squad");
  sim::ClusterJob job(sim::cluster_a(), workload.profile, sim::NoiseConfig{},
                      5);
  std::vector<double> caps;
  for (int i = 0; i < job.size(); ++i) caps.push_back(job.max_local_batch(i));
  experiments::CannikinSystem system(job.size(), caps, workload.b0,
                                     workload.max_total_batch);
  experiments::HarnessOptions options;
  options.max_epochs = 100;
  const auto trace =
      experiments::run_to_target(job, workload, system, options);
  EXPECT_TRUE(trace.reached_target);
}

}  // namespace
}  // namespace cannikin
