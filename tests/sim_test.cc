// Unit + property tests for src/sim: GPU catalog, network model,
// bucketized batch timeline (Figures 1-3) and the simulated cluster.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "sim/cluster.h"
#include "sim/cluster_factory.h"
#include "sim/gpu.h"
#include "sim/network.h"
#include "sim/timeline.h"

namespace cannikin::sim {
namespace {

// -------------------------------------------------------------------- gpu

TEST(GpuCatalog, ContainsPaperGpus) {
  EXPECT_DOUBLE_EQ(gpu_spec(GpuModel::kRtx6000).relative_speed, 1.0);
  // Section 6: the A100 is 3.42x an RTX 6000.
  EXPECT_DOUBLE_EQ(gpu_spec(GpuModel::kA100).relative_speed, 3.42);
  EXPECT_EQ(parse_gpu_model("v100"), GpuModel::kV100);
  EXPECT_THROW(parse_gpu_model("tpu"), std::invalid_argument);
}

TEST(GpuCatalog, SpeedsOrderedLikeHardwareGenerations) {
  EXPECT_LT(gpu_spec(GpuModel::kP100).relative_speed,
            gpu_spec(GpuModel::kV100).relative_speed);
  EXPECT_LT(gpu_spec(GpuModel::kV100).relative_speed,
            gpu_spec(GpuModel::kA100).relative_speed);
  EXPECT_LT(gpu_spec(GpuModel::kA100).relative_speed,
            gpu_spec(GpuModel::kH100).relative_speed);
}

// ---------------------------------------------------------------- network

TEST(NetworkModel, SingleNodeIsFree) {
  NetworkModel net;
  EXPECT_DOUBLE_EQ(net.all_reduce_time(1e9, 1), 0.0);
}

TEST(NetworkModel, RingCostFormula) {
  NetworkModel net;
  net.bandwidth_bytes_per_s = 1e9;
  net.latency_s = 1e-4;
  const int n = 4;
  const double bytes = 8e8;
  const double expected = 2.0 * 3 * (bytes / 4) / 1e9 + 2.0 * 3 * 1e-4;
  EXPECT_NEAR(net.all_reduce_time(bytes, n), expected, 1e-12);
}

TEST(NetworkModel, TimeGrowsWithClusterSize) {
  NetworkModel net;
  const double bytes = 1e8;
  double previous = 0.0;
  for (int n = 2; n <= 16; n *= 2) {
    const double t = net.all_reduce_time(bytes, n);
    EXPECT_GT(t, previous);
    previous = t;
  }
}

TEST(CommSchedule, BucketTimesSumToTotal) {
  NetworkModel net;
  const auto schedule = make_comm_schedule(net, 104e6, 25e6, 8);
  EXPECT_EQ(schedule.num_buckets, 5);
  double total = 0.0;
  for (int j = 0; j < schedule.num_buckets; ++j) {
    total += schedule.bucket_time(j);
  }
  EXPECT_NEAR(total, schedule.total(), 1e-12);
  EXPECT_NEAR(schedule.total(), net.all_reduce_time(104e6, 8), 1e-12);
  EXPECT_THROW(schedule.bucket_time(5), std::out_of_range);
}

TEST(CommSchedule, SingleBucketHasNoOverlapPortion) {
  NetworkModel net;
  const auto schedule = make_comm_schedule(net, 10e6, 25e6, 4);
  EXPECT_EQ(schedule.num_buckets, 1);
  EXPECT_DOUBLE_EQ(schedule.t_other, 0.0);
  EXPECT_GT(schedule.t_last, 0.0);
}

// --------------------------------------------------------------- timeline

TEST(BucketReadyTime, EndpointsMatchSyncStartAndComputeEnd) {
  NodeBatchTiming node{0.4, 1.0, 0.2};
  const int nb = 5;
  EXPECT_NEAR(bucket_ready_time(node, 0, nb), node.sync_start(), 1e-12);
  EXPECT_NEAR(bucket_ready_time(node, nb - 1, nb), node.compute_time(),
              1e-12);
  // Evenly spaced in between.
  const double gap = bucket_ready_time(node, 1, nb) -
                     bucket_ready_time(node, 0, nb);
  EXPECT_NEAR(bucket_ready_time(node, 3, nb) -
                  bucket_ready_time(node, 2, nb),
              gap, 1e-12);
}

TEST(BucketReadyTime, SingleBucketReadyAtComputeEnd) {
  NodeBatchTiming node{0.4, 1.0, 0.2};
  EXPECT_NEAR(bucket_ready_time(node, 0, 1), 1.4, 1e-12);
}

TEST(SimulateBatch, ComputeBottleneckMatchesEq5) {
  // One node, huge backprop relative to communication: Eq. (5).
  CommSchedule comm{5, 0.04, 0.01};
  NodeBatchTiming node{0.2, 2.0, 0.1};
  ASSERT_GE((1.0 - node.gamma) * node.p, comm.t_other);
  const auto timeline = simulate_batch({node}, comm);
  EXPECT_NEAR(timeline.batch_time, node.compute_time() + comm.t_last, 1e-12);
}

TEST(SimulateBatch, CommBottleneckMatchesEq6) {
  // Communication dominates: Eq. (6).
  CommSchedule comm{5, 1.6, 0.4};
  NodeBatchTiming node{0.2, 0.5, 0.1};
  ASSERT_LT((1.0 - node.gamma) * node.p, comm.t_other);
  const auto timeline = simulate_batch({node}, comm);
  EXPECT_NEAR(timeline.batch_time, node.sync_start() + comm.total(), 1e-12);
  EXPECT_TRUE(timeline.communication_saturated);
}

TEST(SimulateBatch, BucketStartsAreMonotone) {
  CommSchedule comm{4, 0.3, 0.1};
  const std::vector<NodeBatchTiming> nodes{{0.1, 1.0, 0.2}, {0.5, 0.4, 0.2}};
  const auto timeline = simulate_batch(nodes, comm);
  for (std::size_t j = 1; j < timeline.bucket_start.size(); ++j) {
    EXPECT_GE(timeline.bucket_start[j], timeline.bucket_finish[j - 1] - 1e-12);
    EXPECT_GE(timeline.bucket_start[j], timeline.bucket_start[j - 1]);
  }
}

// The core timeline property (Section 3.3): under the evenly-distributed
// bucket assumption, the event-level simulation equals the paper's
// closed form Eq. (7) for every cluster composition.
class TimelineEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(TimelineEquivalence, EventSimMatchesClosedForm) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 8));
    const int buckets = static_cast<int>(rng.uniform_int(1, 12));
    CommSchedule comm;
    comm.num_buckets = buckets;
    const double total_comm = rng.uniform(0.01, 2.0);
    comm.t_last = buckets == 1 ? total_comm : total_comm / buckets;
    comm.t_other = total_comm - comm.t_last;

    std::vector<NodeBatchTiming> nodes;
    const double gamma = rng.uniform(0.05, 0.6);
    for (int i = 0; i < n; ++i) {
      nodes.push_back({rng.uniform(0.01, 1.0), rng.uniform(0.01, 3.0), gamma});
    }
    const auto timeline = simulate_batch(nodes, comm);
    const double closed = closed_form_batch_time(nodes, comm);
    EXPECT_NEAR(timeline.batch_time, closed, 1e-9)
        << "n=" << n << " buckets=" << buckets;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(SimulateBatch, EmptyClusterThrows) {
  CommSchedule comm{1, 0.0, 0.1};
  EXPECT_THROW(simulate_batch({}, comm), std::invalid_argument);
  EXPECT_THROW(closed_form_batch_time({}, comm), std::invalid_argument);
}

// ---------------------------------------------------------------- cluster

JobProfile small_job() {
  JobProfile job;
  job.name = "test";
  job.per_sample_forward = 1e-3;
  job.fixed_forward = 5e-3;
  job.per_sample_backward = 2e-3;
  job.fixed_backward = 1e-3;
  job.gradient_bytes = 50e6;
  job.gamma = 0.2;
  job.mem_bytes_per_sample = 10e6;
  return job;
}

TEST(ClusterJob, TruthScalesInverselyWithSpeed) {
  ClusterJob job(cluster_a(), small_job(), NoiseConfig::none(), 1);
  // Node 0 is an A5000 (1.9x), node 2 a P4000 (0.45x).
  const double ratio = job.truth(2).q / job.truth(0).q;
  EXPECT_NEAR(ratio, 1.9 / 0.45, 1e-9);
  EXPECT_NEAR(job.truth(0).q, 1e-3 / 1.9, 1e-12);
  EXPECT_NEAR(job.truth(0).m, 1e-3 / 1.9, 1e-12);
}

TEST(ClusterJob, MemoryCapReflectsDeviceMemory) {
  ClusterJob job(cluster_a(), small_job(), NoiseConfig::none(), 1);
  // A5000: 24 GB * 0.8 / 10 MB = 1920 samples.
  EXPECT_EQ(job.max_local_batch(0), 1920);
  // P4000: 8 GB * 0.8 / 10 MB = 640.
  EXPECT_EQ(job.max_local_batch(2), 640);
  EXPECT_EQ(job.max_total_batch(), 1920 + 1280 + 640);
}

TEST(ClusterJob, TrueBatchTimeMatchesClosedFormOfTruth) {
  ClusterJob job(cluster_a(), small_job(), NoiseConfig::none(), 1);
  const std::vector<double> batches{30.0, 20.0, 10.0};
  std::vector<NodeBatchTiming> timings;
  for (int i = 0; i < job.size(); ++i) {
    const auto& t = job.truth(i);
    timings.push_back({t.a(batches[static_cast<std::size_t>(i)]),
                       t.p(batches[static_cast<std::size_t>(i)]),
                       job.gamma()});
  }
  EXPECT_NEAR(job.true_batch_time(batches),
              closed_form_batch_time(timings, job.comm()), 1e-12);
}

TEST(ClusterJob, NoiselessObservationsEqualTruth) {
  ClusterJob job(cluster_a(), small_job(), NoiseConfig::none(), 1);
  const std::vector<int> batches{30, 20, 10};
  const auto epoch = job.run_epoch(batches, 4);
  ASSERT_EQ(epoch.nodes.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    const auto& truth = job.truth(i);
    const auto& obs = epoch.nodes[static_cast<std::size_t>(i)];
    EXPECT_NEAR(obs.a, truth.a(batches[static_cast<std::size_t>(i)]), 1e-12);
    EXPECT_NEAR(obs.p, truth.p(batches[static_cast<std::size_t>(i)]), 1e-12);
    EXPECT_NEAR(obs.gamma, job.gamma(), 1e-12);
    EXPECT_NEAR(obs.t_other, job.comm().t_other, 1e-12);
    EXPECT_NEAR(obs.t_last, job.comm().t_last, 1e-12);
  }
  EXPECT_NEAR(epoch.avg_batch_time,
              job.true_batch_time({30.0, 20.0, 10.0}), 1e-12);
  EXPECT_NEAR(epoch.total_time, 4 * epoch.avg_batch_time, 1e-12);
}

TEST(ClusterJob, NoisyObservationsCenterOnTruth) {
  NoiseConfig noise;
  ClusterJob job(cluster_b(), small_job(), noise, 3);
  std::vector<int> batches(static_cast<std::size_t>(job.size()), 16);

  double gamma_sum = 0.0;
  const int epochs = 200;
  for (int e = 0; e < epochs; ++e) {
    const auto obs = job.run_epoch(batches, 4);
    gamma_sum += obs.nodes[0].gamma;
  }
  // Log-normal noise has positive mean bias ~ exp(sigma^2/2); with the
  // configured sigmas this stays well inside 5%.
  EXPECT_NEAR(gamma_sum / epochs, job.gamma(), 0.05 * job.gamma());
}

TEST(ClusterJob, RunEpochValidatesArguments) {
  ClusterJob job(cluster_a(), small_job(), NoiseConfig::none(), 1);
  EXPECT_THROW(job.run_epoch({1, 2}, 4), std::invalid_argument);
  EXPECT_THROW(job.run_epoch({1, 2, 3}, 0), std::invalid_argument);
  EXPECT_THROW(job.true_batch_time({-1.0, 2.0, 3.0}), std::invalid_argument);
}

// ---------------------------------------------------------------- factory

TEST(ClusterFactory, ClusterAMatchesTable3) {
  const auto spec = cluster_a();
  ASSERT_EQ(spec.size(), 3);
  EXPECT_EQ(spec.nodes[0].gpu, GpuModel::kA5000);
  EXPECT_EQ(spec.nodes[1].gpu, GpuModel::kA4000);
  EXPECT_EQ(spec.nodes[2].gpu, GpuModel::kP4000);
}

TEST(ClusterFactory, ClusterBMatchesTable4) {
  const auto spec = cluster_b();
  ASSERT_EQ(spec.size(), 16);
  int a100 = 0, v100 = 0, rtx = 0;
  for (const auto& node : spec.nodes) {
    a100 += node.gpu == GpuModel::kA100;
    v100 += node.gpu == GpuModel::kV100;
    rtx += node.gpu == GpuModel::kRtx6000;
  }
  EXPECT_EQ(a100, 4);
  EXPECT_EQ(v100, 4);
  EXPECT_EQ(rtx, 8);
}

TEST(ClusterFactory, ClusterCSharingContention) {
  const auto spec = cluster_c();
  ASSERT_EQ(spec.size(), 16);
  for (const auto& node : spec.nodes) {
    EXPECT_EQ(node.gpu, GpuModel::kRtx6000);
    EXPECT_GT(node.contention, 0.0);
    EXPECT_LE(node.contention, 1.0);
  }
  EXPECT_THROW(cluster_c({0.5, 1.5}), std::invalid_argument);
}

TEST(ClusterFactory, TwoSpeedClusterRatio) {
  const auto spec = two_speed_cluster(8, 4.0);
  ASSERT_EQ(spec.size(), 8);
  EXPECT_DOUBLE_EQ(spec.nodes[0].contention, 1.0);
  EXPECT_DOUBLE_EQ(spec.nodes[7].contention, 0.25);
  EXPECT_THROW(two_speed_cluster(1, 2.0), std::invalid_argument);
  EXPECT_THROW(two_speed_cluster(4, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace cannikin::sim
