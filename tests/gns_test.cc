// Tests for the heterogeneous gradient-noise-scale machinery
// (Section 4.4, Theorem 4.1, Appendix B).
//
// The statistical claims are verified by Monte Carlo against synthetic
// stochastic gradients with known |G|^2 and tr(Sigma): per-sample
// gradients are G + noise, so a batch-b average has
// E[|g_b|^2] = |G|^2 + tr(Sigma)/b exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/gns.h"

namespace cannikin::core {
namespace {

// Synthetic gradient world: dimension d, true gradient G, isotropic
// per-sample noise with component variance sigma2 (tr(Sigma) = d*sigma2).
struct GradientWorld {
  std::size_t dim;
  double component;   // every component of G
  double sigma;       // per-sample component stddev
  double grad_sq() const {
    return static_cast<double>(dim) * component * component;
  }
  double noise_tr() const {
    return static_cast<double>(dim) * sigma * sigma;
  }
};

// Draws each node's local-batch mean gradient and the Eq. (9) global
// aggregate; returns (|g_i|^2 per node, |g|^2).
std::pair<std::vector<double>, double> draw_step(
    const GradientWorld& world, const std::vector<double>& batches,
    Rng& rng) {
  const std::size_t n = batches.size();
  double total_batch = 0.0;
  for (double b : batches) total_batch += b;

  std::vector<std::vector<double>> locals(n,
                                          std::vector<double>(world.dim));
  std::vector<double> global(world.dim, 0.0);
  std::vector<double> local_norms(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < world.dim; ++d) {
      // Mean of b_i i.i.d. per-sample gradients: stddev sigma/sqrt(b).
      const double v =
          world.component + rng.normal(0.0, world.sigma / std::sqrt(batches[i]));
      locals[i][d] = v;
      local_norms[i] += v * v;
      global[d] += batches[i] / total_batch * v;
    }
  }
  double global_norm = 0.0;
  for (double v : global) global_norm += v * v;
  return {local_norms, global_norm};
}

TEST(LocalEstimators, UnbiasedForGradAndNoise) {
  const GradientWorld world{64, 0.5, 2.0};
  const std::vector<double> batches{8.0, 24.0};
  Rng rng(1);
  double grad_sum = 0.0, noise_sum = 0.0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const auto [local_norms, global_norm] = draw_step(world, batches, rng);
    const GnsSample s = local_estimators(batches[0], 32.0, local_norms[0],
                                         global_norm);
    grad_sum += s.grad_sq;
    noise_sum += s.noise;
  }
  EXPECT_NEAR(grad_sum / trials, world.grad_sq(), 0.03 * world.grad_sq());
  EXPECT_NEAR(noise_sum / trials, world.noise_tr(), 0.03 * world.noise_tr());
}

TEST(LocalEstimators, ValidatesBatchSizes) {
  EXPECT_THROW(local_estimators(0.0, 10.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(local_estimators(10.0, 10.0, 1.0, 1.0), std::invalid_argument);
}

TEST(OptimalWeights, SumToOne) {
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(trial % 7);
    std::vector<double> batches(n);
    for (auto& b : batches) b = rng.uniform(1.0, 100.0);
    const Vector wg = optimal_grad_weights(batches);
    const Vector ws = optimal_noise_weights(batches);
    double sg = 0.0, ss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sg += wg[i];
      ss += ws[i];
    }
    EXPECT_NEAR(sg, 1.0, 1e-9);
    EXPECT_NEAR(ss, 1.0, 1e-9);
  }
}

TEST(OptimalWeights, EqualBatchesGiveUniformWeights) {
  // With homogeneous local batches, the minimum-variance combination
  // degenerates to plain averaging (the homogeneous-cluster practice).
  const std::vector<double> batches{16.0, 16.0, 16.0, 16.0};
  for (const Vector& w :
       {optimal_grad_weights(batches), optimal_noise_weights(batches)}) {
    for (double v : w) EXPECT_NEAR(v, 0.25, 1e-9);
  }
}

TEST(OptimalWeights, LargerLocalBatchGetsMoreNoiseWeightInverted) {
  // Var(S_i) grows with b_i (Lemma B.1), so the noise estimator
  // down-weights large-batch nodes.
  const std::vector<double> batches{4.0, 32.0};
  const Vector ws = optimal_noise_weights(batches);
  EXPECT_GT(ws[0], ws[1]);
}

TEST(EstimateGns, UnbiasedUnderHeterogeneousBatches) {
  const GradientWorld world{32, 0.4, 1.5};
  const std::vector<double> batches{4.0, 12.0, 28.0, 20.0};
  Rng rng(3);
  double grad_sum = 0.0, noise_sum = 0.0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const auto [local_norms, global_norm] = draw_step(world, batches, rng);
    const GnsSample s = estimate_gns(batches, local_norms, global_norm,
                                     GnsWeighting::kOptimal);
    grad_sum += s.grad_sq;
    noise_sum += s.noise;
  }
  EXPECT_NEAR(grad_sum / trials, world.grad_sq(), 0.05 * world.grad_sq());
  EXPECT_NEAR(noise_sum / trials, world.noise_tr(), 0.05 * world.noise_tr());
}

// Rebuilds the Theorem 4.1 covariance-model matrices (the paper's A_G
// and A_S up to the common 4 |G|^2 tr(Sigma) factor, which cancels in
// the weights).
Matrix theorem_matrix_grad(const std::vector<double>& b) {
  const std::size_t n = b.size();
  double big_b = 0.0;
  for (double v : b) big_b += v;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = (big_b + 2.0 * b[i]) / (big_b * big_b - big_b * b[i]);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      a(i, j) = (big_b * big_b - b[i] * b[i] - b[j] * b[j]) /
                (big_b * (big_b - b[i]) * (big_b - b[j]));
    }
  }
  return a;
}

Matrix theorem_matrix_noise(const std::vector<double>& b) {
  const std::size_t n = b.size();
  double big_b = 0.0;
  for (double v : b) big_b += v;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = big_b * b[i] / (big_b - b[i]);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      a(i, j) = b[i] * b[j] * (big_b - b[i] - b[j]) /
                ((big_b - b[i]) * (big_b - b[j]));
    }
  }
  return a;
}

double quadratic_form(const Matrix& a, const Vector& w) {
  const Vector aw = a * w;
  return dot(w, aw);
}

TEST(OptimalWeights, MinimizeVarianceUnderTheoremCovarianceModel) {
  // Theorem 4.1's claim, checked directly: among all weight vectors
  // summing to one, w = 1^T A^{-1} / (1^T A^{-1} 1) minimizes the
  // quadratic form w^T A w, where A is the paper's covariance model of
  // the local estimators. (The model itself is an approximation -- its
  // Lemmas B.4/B.5 drop cross-terms of the gradient -- so optimality is
  // asserted against the model, not against arbitrary gradient
  // distributions; see DESIGN.md.)
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(trial % 6);
    std::vector<double> batches(n);
    for (auto& b : batches) b = rng.uniform(2.0, 64.0);

    const Matrix a_grad = theorem_matrix_grad(batches);
    const Matrix a_noise = theorem_matrix_noise(batches);
    const Vector w_grad = optimal_grad_weights(batches);
    const Vector w_noise = optimal_noise_weights(batches);
    const Vector uniform(n, 1.0 / static_cast<double>(n));

    EXPECT_LE(quadratic_form(a_grad, w_grad),
              quadratic_form(a_grad, uniform) + 1e-12);
    EXPECT_LE(quadratic_form(a_noise, w_noise),
              quadratic_form(a_noise, uniform) + 1e-12);

    // ... and beats random normalized weight vectors too.
    for (int probe = 0; probe < 20; ++probe) {
      Vector w(n);
      double sum = 0.0;
      for (auto& v : w) {
        v = rng.uniform(0.01, 1.0);
        sum += v;
      }
      for (auto& v : w) v /= sum;
      EXPECT_LE(quadratic_form(a_grad, w_grad),
                quadratic_form(a_grad, w) + 1e-12);
      EXPECT_LE(quadratic_form(a_noise, w_noise),
                quadratic_form(a_noise, w) + 1e-12);
    }
  }
}

TEST(EstimateGns, BothWeightingsRecoverTrueGnsOnAverage) {
  // Whatever the weighting, the combined estimators stay unbiased, so
  // the smoothed GNS ratio converges to tr(Sigma) / |G|^2.
  const GradientWorld world{16, 1.0, 0.7};
  const std::vector<double> batches{8.0, 16.0, 48.0, 24.0};
  const double true_gns = world.noise_tr() / world.grad_sq();
  for (auto weighting : {GnsWeighting::kOptimal, GnsWeighting::kNaive}) {
    Rng rng(4);
    double grad_sum = 0.0, noise_sum = 0.0;
    const int trials = 8000;
    for (int t = 0; t < trials; ++t) {
      const auto [local_norms, global_norm] = draw_step(world, batches, rng);
      const GnsSample s =
          estimate_gns(batches, local_norms, global_norm, weighting);
      grad_sum += s.grad_sq;
      noise_sum += s.noise;
    }
    EXPECT_NEAR((noise_sum / trials) / (grad_sum / trials), true_gns,
                0.1 * true_gns);
  }
}

TEST(EstimateGns, SingleContributionValidation) {
  EXPECT_THROW(estimate_gns({}, {}, 1.0, GnsWeighting::kOptimal),
               std::invalid_argument);
  EXPECT_THROW(estimate_gns({8.0, 8.0}, {1.0}, 1.0, GnsWeighting::kOptimal),
               std::invalid_argument);
  EXPECT_THROW(
      estimate_gns({8.0, 0.0}, {1.0, 1.0}, 1.0, GnsWeighting::kOptimal),
      std::invalid_argument);
}

TEST(GnsSampleRatio, MatchesDefinition) {
  GnsSample s{4.0, 8.0};
  EXPECT_DOUBLE_EQ(s.gns(), 2.0);
  EXPECT_DOUBLE_EQ((GnsSample{0.0, 8.0}).gns(), 0.0);
}

TEST(GnsTracker, SmoothsAndClamps) {
  GnsTracker tracker(0.5);
  EXPECT_FALSE(tracker.has_value());
  EXPECT_DOUBLE_EQ(tracker.gns(), 0.0);
  tracker.update_sample({1.0, 10.0});
  EXPECT_TRUE(tracker.has_value());
  EXPECT_NEAR(tracker.gns(), 10.0, 1e-9);
  // A wildly negative sample (noise estimates can dip below zero) must
  // not produce a negative GNS.
  tracker.update_sample({1.0, -100.0});
  EXPECT_GE(tracker.gns(), 0.0);
}

TEST(GnsTracker, VanishedGradientReportsHugeNoise) {
  GnsTracker tracker(1.0);
  tracker.update_sample({-1.0, 5.0});
  EXPECT_GE(tracker.gns(), 1e5);
}

TEST(GnsTracker, ConvergesToStationaryRatio) {
  GnsTracker tracker(0.2);
  Rng rng(6);
  for (int i = 0; i < 400; ++i) {
    tracker.update_sample({2.0 + rng.normal(0.0, 0.2),
                           6.0 + rng.normal(0.0, 0.6)});
  }
  EXPECT_NEAR(tracker.gns(), 3.0, 0.3);
}

}  // namespace
}  // namespace cannikin::core
