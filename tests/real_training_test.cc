// Tests for RealTrainingDriver: planning policies (DDP, Cannikin)
// executing on the real ParallelTrainer / BucketReducer substrate, with
// measured phase timings flowing back as observations.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "baselines/ddp.h"
#include "dnn/data.h"
#include "dnn/model.h"
#include "dnn/zoo.h"
#include "experiments/cannikin_system.h"
#include "experiments/real_training.h"

namespace cannikin {
namespace {

// A tiny classification stand-in so the tests stay fast.
dnn::ZooEntry tiny_entry() {
  dnn::ZooEntry entry;
  entry.workload = "tiny";
  entry.task = dnn::ParallelTrainer::Task::kClassification;
  entry.factory = [] { return dnn::make_mlp(8, 12, 1, 3); };
  entry.dataset = std::make_shared<dnn::InMemoryDataset>(
      dnn::make_gaussian_mixture(240, 8, 3, 3.0, 17));
  entry.base_lr = 0.05;
  entry.lr_scaling = dnn::LrScaling::kNone;
  entry.initial_total_batch = 12;
  return entry;
}

TEST(RealTrainingDriver, DdpPolicyExecutesOnTheRealTrainer) {
  const auto entry = tiny_entry();
  baselines::DdpSystem ddp(3, 24, {64, 64, 64});
  experiments::RealTrainingDriver driver(&ddp, entry, 3);

  for (int epoch = 0; epoch < 2; ++epoch) {
    const auto row = driver.run_epoch();
    EXPECT_EQ(row.epoch, epoch);
    EXPECT_EQ(row.total_batch, 24);
    ASSERT_EQ(row.local_batches.size(), 3u);
    EXPECT_EQ(std::accumulate(row.local_batches.begin(),
                              row.local_batches.end(), 0),
              24);
    EXPECT_TRUE(std::isfinite(row.mean_loss));
    EXPECT_GT(row.epoch_seconds, 0.0);
  }
}

TEST(RealTrainingDriver, CannikinPolicyClosesTheLoopOnMeasuredTimings) {
  const auto entry = tiny_entry();
  experiments::CannikinSystem system(3, {64, 64, 64},
                                     /*initial_total_batch=*/12,
                                     /*max_total_batch=*/48);
  experiments::RealTrainingDriver driver(&system, entry, 3);

  for (int epoch = 0; epoch < 4; ++epoch) {
    const auto row = driver.run_epoch();
    ASSERT_EQ(row.local_batches.size(), 3u);
    EXPECT_GT(row.total_batch, 0);
    EXPECT_LE(row.total_batch, 48);
    EXPECT_EQ(std::accumulate(row.local_batches.begin(),
                              row.local_batches.end(), 0),
              row.total_batch);
    EXPECT_TRUE(std::isfinite(row.mean_loss));
    EXPECT_GE(row.gns, 0.0);
  }
  // The controller consumed four epochs of real observations and kept a
  // finite GNS estimate alive from genuine gradient norms.
  EXPECT_GE(system.controller().current_gns(), 0.0);
  EXPECT_TRUE(std::isfinite(system.controller().current_gns()));
}

TEST(RealTrainingDriver, RejectsMismatchedOrEmptyPlans) {
  const auto entry = tiny_entry();
  baselines::DdpSystem ddp(2, 16, {64, 64});
  EXPECT_THROW(
      experiments::RealTrainingDriver(nullptr, entry, 2),
      std::invalid_argument);
  // Plan for 2 nodes executed on a 3-node trainer.
  experiments::RealTrainingDriver driver(&ddp, entry, 3);
  EXPECT_THROW(driver.run_epoch(), std::invalid_argument);
}

TEST(ParallelTrainerTimings, EpochReportsMeasuredPhaseProfile) {
  const auto dataset = dnn::make_gaussian_mixture(300, 8, 3, 3.0, 5);
  dnn::TrainerOptions options;
  options.num_nodes = 2;
  options.lr_scaling = dnn::LrScaling::kNone;
  options.initial_total_batch = 20;
  options.bucket_capacity = 64;  // several buckets for this model
  dnn::ParallelTrainer trainer(
      &dataset, [] { return dnn::make_mlp(8, 16, 2, 3); }, options);

  const auto result = trainer.run_epoch({12, 8});
  EXPECT_GT(result.steps, 0);
  EXPECT_GT(result.epoch_seconds, 0.0);
  ASSERT_EQ(result.node_timings.size(), 2u);
  for (const auto& timing : result.node_timings) {
    EXPECT_GT(timing.a, 0.0);
    EXPECT_GT(timing.p, 0.0);
    EXPECT_GE(timing.gamma, 0.0);
    EXPECT_LE(timing.gamma, 1.0);
    EXPECT_GE(timing.t_last, 0.0);
    EXPECT_GE(timing.t_other, 0.0);
  }
}

}  // namespace
}  // namespace cannikin
