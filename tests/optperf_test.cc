// Tests for the OptPerf solvers (Section 3.3, Algorithm 1).
//
// The strongest checks are solver-vs-ground-truth: the binary-search
// solver must (a) match the exhaustive boundary scan, (b) satisfy the
// optimality conditions of Appendices A.1-A.3, and (c) beat or match
// every feasible assignment drawn at random on the *event-level*
// simulator, not just on its own model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/optperf.h"
#include "sim/cluster.h"
#include "sim/cluster_factory.h"

namespace cannikin::core {
namespace {

std::vector<NodeModel> models_from_truth(const sim::ClusterJob& job) {
  std::vector<NodeModel> models;
  for (int i = 0; i < job.size(); ++i) {
    const auto& t = job.truth(i);
    NodeModel m;
    m.q = t.q;
    m.s = t.s;
    m.k = t.k;
    m.m = t.m;
    m.max_batch = t.max_local_batch;
    models.push_back(m);
  }
  return models;
}

CommTimes comm_from_truth(const sim::ClusterJob& job) {
  return {job.gamma(), job.comm().t_other, job.comm().t_last};
}

sim::JobProfile medium_job() {
  sim::JobProfile job;
  job.name = "medium";
  job.per_sample_forward = 1.2e-3;
  job.fixed_forward = 8e-3;
  job.per_sample_backward = 2.4e-3;
  job.fixed_backward = 2e-3;
  job.gradient_bytes = 100e6;
  job.gamma = 0.18;
  job.mem_bytes_per_sample = 2e7;
  return job;
}

// ------------------------------------------------- predicted_batch_time

TEST(PredictedBatchTime, MatchesSimulatorTruth) {
  sim::ClusterJob job(sim::cluster_a(), medium_job(),
                      sim::NoiseConfig::none(), 1);
  const auto models = models_from_truth(job);
  const auto comm = comm_from_truth(job);
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> batches;
    for (int i = 0; i < job.size(); ++i) {
      batches.push_back(rng.uniform(1.0, 200.0));
    }
    EXPECT_NEAR(predicted_batch_time(models, comm, batches),
                job.true_batch_time(batches), 1e-9);
  }
}

// -------------------------------------------------- optimality conditions

TEST(OptPerfSolver, ComputeBottleneckRegimeEqualizesComputeTimes) {
  // Large batch: everyone is computing-bottleneck (Appendix A.1).
  sim::ClusterJob job(sim::cluster_a(), medium_job(),
                      sim::NoiseConfig::none(), 1);
  OptPerfSolver solver(models_from_truth(job), comm_from_truth(job));
  const auto result = solver.solve(1500.0);

  ASSERT_EQ(result.num_compute_bottleneck, 3);
  const auto& models = solver.models();
  const double t0 = models[0].compute(result.local_batches[0]);
  for (int i = 1; i < 3; ++i) {
    EXPECT_NEAR(models[static_cast<std::size_t>(i)].compute(
                    result.local_batches[static_cast<std::size_t>(i)]),
                t0, 1e-6);
  }
  EXPECT_NEAR(result.batch_time, t0 + solver.comm().t_last, 1e-9);
  for (auto b : result.bottleneck) EXPECT_EQ(b, Bottleneck::kCompute);
}

TEST(OptPerfSolver, CommBottleneckRegimeEqualizesSyncStarts) {
  // Tiny batch with a heavy gradient: everyone is communication-
  // bottleneck (Appendix A.2).
  sim::JobProfile profile = medium_job();
  profile.gradient_bytes = 400e6;
  sim::ClusterJob job(sim::cluster_a(), profile, sim::NoiseConfig::none(), 1);
  OptPerfSolver solver(models_from_truth(job), comm_from_truth(job));
  const auto result = solver.solve(60.0);

  ASSERT_EQ(result.num_compute_bottleneck, 0);
  for (double b : result.local_batches) ASSERT_GT(b, 0.0);
  const auto& models = solver.models();
  const double gamma = solver.comm().gamma;
  const double sync0 = models[0].a(result.local_batches[0]) +
                       gamma * models[0].p(result.local_batches[0]);
  for (int i = 1; i < 3; ++i) {
    const double sync =
        models[static_cast<std::size_t>(i)].a(
            result.local_batches[static_cast<std::size_t>(i)]) +
        gamma * models[static_cast<std::size_t>(i)].p(
                    result.local_batches[static_cast<std::size_t>(i)]);
    EXPECT_NEAR(sync, sync0, 1e-6);
  }
  EXPECT_NEAR(result.batch_time, sync0 + solver.comm().total(), 1e-9);
}

TEST(OptPerfSolver, MixedRegimeSatisfiesAppendixA3) {
  // Pick a batch size between the two regimes on the very heterogeneous
  // cluster A (A5000 vs P4000 is a 4.2x speed gap).
  sim::ClusterJob job(sim::cluster_a(), medium_job(),
                      sim::NoiseConfig::none(), 1);
  OptPerfSolver solver(models_from_truth(job), comm_from_truth(job));

  // Find a B whose solution is genuinely mixed.
  bool found_mixed = false;
  for (double batch = 20.0; batch <= 1200.0 && !found_mixed; batch += 20.0) {
    const auto result = solver.solve(batch);
    if (result.num_compute_bottleneck == 0 ||
        result.num_compute_bottleneck == 3) {
      continue;
    }
    found_mixed = true;
    const auto& models = solver.models();
    const double gamma = solver.comm().gamma;
    const double t_other = solver.comm().t_other;
    // Compute-bottleneck nodes share t_compute = mu; communication-
    // bottleneck nodes satisfy syncStart + T_o = mu.
    for (int i = 0; i < 3; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const double b = result.local_batches[idx];
      if (result.bottleneck[idx] == Bottleneck::kCompute) {
        EXPECT_NEAR(models[idx].compute(b), result.mu, 1e-6);
      } else {
        EXPECT_NEAR(models[idx].a(b) + gamma * models[idx].p(b) + t_other,
                    result.mu, 1e-6);
      }
    }
    EXPECT_NEAR(result.batch_time, result.mu + solver.comm().t_last, 1e-9);
  }
  EXPECT_TRUE(found_mixed) << "no mixed-regime batch size found in sweep";
}

// ------------------------------------------------------ solver vs search

class SolverAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SolverAgreement, BinarySearchMatchesExhaustive) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 40; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 10));
    std::vector<NodeModel> models;
    for (int i = 0; i < n; ++i) {
      NodeModel m;
      m.q = rng.uniform(1e-4, 5e-3);
      m.s = rng.uniform(1e-3, 2e-2);
      m.k = rng.uniform(1e-4, 8e-3);
      m.m = rng.uniform(1e-3, 1e-2);
      models.push_back(m);
    }
    CommTimes comm{rng.uniform(0.05, 0.5), rng.uniform(0.0, 0.2),
                   rng.uniform(1e-3, 0.05)};
    OptPerfSolver solver(models, comm);
    const double total = rng.uniform(n * 2.0, n * 400.0);
    const auto fast = solver.solve(total);
    const auto exhaustive = solver.solve_exhaustive(total);
    EXPECT_NEAR(fast.batch_time, exhaustive.batch_time,
                1e-7 * exhaustive.batch_time)
        << "n=" << n << " B=" << total;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverAgreement,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(OptPerfSolver, BeatsRandomFeasibleAssignmentsOnTrueSimulator) {
  // OptPerf must be <= the event-simulated time of any assignment.
  sim::ClusterJob job(sim::cluster_b(), medium_job(),
                      sim::NoiseConfig::none(), 1);
  OptPerfSolver solver(models_from_truth(job), comm_from_truth(job));
  Rng rng(17);
  for (double total : {64.0, 256.0, 1024.0}) {
    const auto result = solver.solve(total);
    EXPECT_NEAR(result.batch_time, job.true_batch_time(result.local_batches),
                1e-9);
    for (int trial = 0; trial < 60; ++trial) {
      // Random split of `total` across the 16 nodes.
      std::vector<double> split(16);
      double sum = 0.0;
      for (auto& v : split) {
        v = rng.uniform(0.05, 1.0);
        sum += v;
      }
      for (auto& v : split) v *= total / sum;
      EXPECT_LE(result.batch_time, job.true_batch_time(split) + 1e-9);
    }
    // ... including the even split DDP would use.
    const std::vector<double> even(16, total / 16.0);
    EXPECT_LE(result.batch_time, job.true_batch_time(even) + 1e-9);
  }
}

// -------------------------------------------------------------- structure

TEST(OptPerfSolver, BatchesSumToTotalAndRespectCaps) {
  sim::ClusterJob job(sim::cluster_b(), medium_job(),
                      sim::NoiseConfig::none(), 1);
  OptPerfSolver solver(models_from_truth(job), comm_from_truth(job));
  for (int total : {50, 333, 1000, 3000}) {
    const auto result = solver.solve(total);
    double continuous_sum = 0.0;
    int int_sum = 0;
    for (int i = 0; i < job.size(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      continuous_sum += result.local_batches[idx];
      int_sum += result.local_batches_int[idx];
      EXPECT_GE(result.local_batches[idx], 0.0);
      EXPECT_LE(result.local_batches_int[idx], job.max_local_batch(i));
    }
    EXPECT_NEAR(continuous_sum, total, 1e-6);
    EXPECT_EQ(int_sum, total);
  }
}

TEST(OptPerfSolver, FasterNodesGetLargerBatches) {
  sim::ClusterJob job(sim::cluster_a(), medium_job(),
                      sim::NoiseConfig::none(), 1);
  OptPerfSolver solver(models_from_truth(job), comm_from_truth(job));
  const auto result = solver.solve(600.0);
  // Cluster A speeds: a5000 (1.9) > a4000 (1.2) > p4000 (0.45).
  EXPECT_GT(result.local_batches[0], result.local_batches[1]);
  EXPECT_GT(result.local_batches[1], result.local_batches[2]);
}

TEST(OptPerfSolver, OptPerfMonotoneInTotalBatch) {
  sim::ClusterJob job(sim::cluster_b(), medium_job(),
                      sim::NoiseConfig::none(), 1);
  OptPerfSolver solver(models_from_truth(job), comm_from_truth(job));
  double previous = 0.0;
  for (double total = 32.0; total <= 4096.0; total *= 2.0) {
    const double t = solver.solve(total).batch_time;
    EXPECT_GE(t, previous - 1e-9);
    previous = t;
  }
}

TEST(OptPerfSolver, MoreComputeBottleneckNodesAsBatchGrows) {
  sim::ClusterJob job(sim::cluster_b(), medium_job(),
                      sim::NoiseConfig::none(), 1);
  OptPerfSolver solver(models_from_truth(job), comm_from_truth(job));
  int previous = 0;
  for (double total = 16.0; total <= 8192.0; total *= 2.0) {
    const int boundary = solver.solve(total).num_compute_bottleneck;
    EXPECT_GE(boundary, previous);
    previous = boundary;
  }
}

TEST(OptPerfSolver, WarmStartMatchesColdAndSavesSolves) {
  sim::ClusterJob job(sim::cluster_b(), medium_job(),
                      sim::NoiseConfig::none(), 1);
  OptPerfSolver solver(models_from_truth(job), comm_from_truth(job));
  const auto cold = solver.solve(700.0);
  const auto warm =
      solver.solve_with_hint(700.0, cold.num_compute_bottleneck);
  EXPECT_NEAR(warm.batch_time, cold.batch_time, 1e-12);
  EXPECT_LE(warm.linear_solves, cold.linear_solves);
}

TEST(OptPerfSolver, InfeasibleTotalBatchFlagsResult) {
  sim::JobProfile profile = medium_job();
  profile.mem_bytes_per_sample = 4e9;  // tiny caps
  sim::ClusterJob job(sim::cluster_a(), profile, sim::NoiseConfig::none(), 1);
  OptPerfSolver solver(models_from_truth(job), comm_from_truth(job));
  const auto result = solver.solve(1e6);
  EXPECT_FALSE(result.feasible);
}

TEST(OptPerfSolver, SingleNodeCluster) {
  std::vector<NodeModel> models(1);
  models[0].q = 1e-3;
  models[0].s = 5e-3;
  models[0].k = 2e-3;
  models[0].m = 1e-3;
  OptPerfSolver solver(models, CommTimes{0.2, 0.0, 0.0});
  const auto result = solver.solve(100.0);
  EXPECT_NEAR(result.local_batches[0], 100.0, 1e-9);
  EXPECT_NEAR(result.batch_time, models[0].compute(100.0), 1e-9);
}

TEST(OptPerfSolver, InvalidArgumentsThrow) {
  EXPECT_THROW(OptPerfSolver({}, CommTimes{}), std::invalid_argument);
  std::vector<NodeModel> models(2);
  models[0].q = models[1].q = 1e-3;
  models[0].k = models[1].k = 1e-3;
  EXPECT_THROW(OptPerfSolver(models, CommTimes{1.5, 0.1, 0.1}),
               std::invalid_argument);
  OptPerfSolver solver(models, CommTimes{0.2, 0.1, 0.1});
  EXPECT_THROW(solver.solve(0.0), std::invalid_argument);
  EXPECT_THROW(solver.solve(-5.0), std::invalid_argument);
}

// ---------------------------------------------------------- Eq. 8 + round

TEST(BootstrapAssignment, InverseProportionalToPerSampleTime) {
  // Eq. (8): node twice as fast gets twice the batch.
  const auto batches =
      bootstrap_assignment({1.0, 2.0, 4.0}, 70, {1e9, 1e9, 1e9});
  EXPECT_EQ(batches[0], 40);
  EXPECT_EQ(batches[1], 20);
  EXPECT_EQ(batches[2], 10);
}

TEST(BootstrapAssignment, RespectsCapsAndValidates) {
  const auto batches = bootstrap_assignment({1.0, 1.0}, 100, {30.0, 1e9});
  EXPECT_EQ(batches[0], 30);
  EXPECT_EQ(batches[1], 70);
  EXPECT_THROW(bootstrap_assignment({1.0, 0.0}, 10, {1e9, 1e9}),
               std::invalid_argument);
  EXPECT_THROW(bootstrap_assignment({1.0}, 0, {1e9}), std::invalid_argument);
}

TEST(RoundBatches, PreservesSumAndOrdering) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    const int total = static_cast<int>(rng.uniform_int(n, 500));
    std::vector<double> continuous(static_cast<std::size_t>(n));
    double sum = 0.0;
    for (auto& v : continuous) {
      v = rng.uniform(0.0, 1.0);
      sum += v;
    }
    for (auto& v : continuous) v *= total / sum;
    const auto rounded =
        round_batches(continuous, total,
                      std::vector<double>(static_cast<std::size_t>(n), 1e9));
    int rounded_sum = 0;
    for (std::size_t i = 0; i < rounded.size(); ++i) {
      rounded_sum += rounded[i];
      // Largest-remainder rounding moves each entry by less than 1.
      EXPECT_NEAR(rounded[i], continuous[i], 1.0 + 1e-9);
    }
    EXPECT_EQ(rounded_sum, total);
  }
}

TEST(RoundBatches, CapsClampTarget) {
  const auto rounded = round_batches({5.0, 5.0}, 10, {3.0, 3.0});
  EXPECT_EQ(rounded[0] + rounded[1], 6);  // capped below the target
}

}  // namespace
}  // namespace cannikin::core
