// Partition tolerance and chaos fuzzing: plan_delivery retry/backoff
// semantics, the LinkFaults lossy-network model, quorum-mode all-reduce
// (exclude-and-rescale vs QuorumLostError), lossy-link training that
// converges through retries, and the seeded chaos harness invariants
// (no deadlock, typed errors only, restore-or-clean-give-up, replay
// determinism, schedule shrinking).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "chaos/chaos_harness.h"
#include "comm/process_group.h"
#include "comm/quorum.h"
#include "dnn/data.h"
#include "dnn/model.h"
#include "dnn/parallel_trainer.h"
#include "obs/metrics.h"
#include "sim/network.h"

namespace cannikin {
namespace {

using chaos::ChaosConfig;
using chaos::ChaosResult;
using chaos::ChaosSchedule;

// ------------------------------------------------------- plan_delivery

sim::FabricModel lossy_fabric(double drop, std::uint64_t seed) {
  sim::FabricModel fabric = sim::FabricModel::uniform_latency(1e-4);
  fabric.faults.enabled = true;
  fabric.faults.drop_probability = drop;
  fabric.faults.seed = seed;
  return fabric;
}

TEST(PlanDelivery, FaultFreeFastPathDeliversFirstAttempt) {
  const sim::FabricModel fabric = sim::FabricModel::uniform_latency(2e-3);
  sim::RetryPolicy retry;
  retry.max_attempts = 5;
  const sim::DeliveryPlan plan =
      sim::plan_delivery(fabric, retry, 0, 1, 64, 1.0, 7);
  EXPECT_TRUE(plan.delivered);
  EXPECT_EQ(plan.attempts, 1);
  EXPECT_EQ(plan.resends, 0);
  EXPECT_DOUBLE_EQ(plan.delivery_seconds, 1.0 + 2e-3);
}

TEST(PlanDelivery, SameInputsReplayIdentically) {
  const sim::FabricModel fabric = lossy_fabric(0.5, 99);
  sim::RetryPolicy retry;
  retry.max_attempts = 6;
  retry.seed = 3;
  for (std::uint64_t seq = 0; seq < 50; ++seq) {
    const sim::DeliveryPlan a =
        sim::plan_delivery(fabric, retry, 2, 5, 128, 0.25, seq);
    const sim::DeliveryPlan b =
        sim::plan_delivery(fabric, retry, 2, 5, 128, 0.25, seq);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_DOUBLE_EQ(a.delivery_seconds, b.delivery_seconds);
  }
}

TEST(PlanDelivery, ExhaustedBudgetDropsTheMessage) {
  // drop_probability 1.0: every attempt lost, budget runs out.
  const sim::FabricModel fabric = lossy_fabric(1.0, 1);
  sim::RetryPolicy retry;
  retry.max_attempts = 4;
  const sim::DeliveryPlan plan =
      sim::plan_delivery(fabric, retry, 0, 1, 8, 0.0, 0);
  EXPECT_FALSE(plan.delivered);
  EXPECT_EQ(plan.attempts, 4);
  EXPECT_EQ(plan.resends, 3);
}

TEST(PlanDelivery, BackoffRidesOutAPartitionThatHeals) {
  sim::FabricModel fabric = sim::FabricModel::uniform_latency(1e-4);
  fabric.faults.enabled = true;
  fabric.faults.partition_side = {0, 1};  // rank 0 vs rank 1
  fabric.faults.partition_start_seconds = 0.0;
  fabric.faults.partition_heal_seconds = 0.05;
  sim::RetryPolicy retry;
  retry.max_attempts = 6;
  retry.backoff_initial_seconds = 0.005;
  retry.backoff_multiplier = 2.0;
  retry.jitter_fraction = 0.0;
  // Attempts at t = 0, .005, .015, .035, .075: the t=0.075 attempt is
  // past the heal and goes through.
  const sim::DeliveryPlan plan =
      sim::plan_delivery(fabric, retry, 0, 1, 8, 0.0, 0);
  EXPECT_TRUE(plan.delivered);
  EXPECT_GT(plan.resends, 0);
  EXPECT_GE(plan.delivery_seconds, 0.05);

  // Same cut, never heals: the budget runs out.
  fabric.faults.partition_heal_seconds = -1.0;
  const sim::DeliveryPlan dropped =
      sim::plan_delivery(fabric, retry, 0, 1, 8, 0.0, 0);
  EXPECT_FALSE(dropped.delivered);

  // Same side of the cut: unaffected.
  fabric.faults.partition_side = {0, 0};
  const sim::DeliveryPlan same_side =
      sim::plan_delivery(fabric, retry, 0, 1, 8, 0.0, 0);
  EXPECT_TRUE(same_side.delivered);
  EXPECT_EQ(same_side.resends, 0);
}

TEST(LinkFaults, PartitionWindowAndSides) {
  sim::LinkFaults faults;
  faults.enabled = true;
  faults.partition_side = {0, 0, 1};
  faults.partition_start_seconds = 1.0;
  faults.partition_heal_seconds = 2.0;
  EXPECT_FALSE(faults.partitioned(0, 2, 0.5));  // before the cut
  EXPECT_TRUE(faults.partitioned(0, 2, 1.5));   // across, active
  EXPECT_TRUE(faults.partitioned(2, 1, 1.5));   // symmetric
  EXPECT_FALSE(faults.partitioned(0, 1, 1.5));  // same side
  EXPECT_FALSE(faults.partitioned(0, 2, 2.5));  // healed
  // Ranks beyond the side vector default to side 0.
  EXPECT_TRUE(faults.partitioned(2, 7, 1.5));
  EXPECT_FALSE(faults.partitioned(0, 7, 1.5));
}

TEST(LinkFaults, DropDecisionIsAPureHash) {
  sim::LinkFaults faults;
  faults.enabled = true;
  faults.drop_probability = 0.5;
  faults.seed = 42;
  int drops = 0;
  for (std::uint64_t attempt = 0; attempt < 1000; ++attempt) {
    const bool first = faults.dropped(0, 1, attempt);
    EXPECT_EQ(first, faults.dropped(0, 1, attempt));  // replayable
    drops += first ? 1 : 0;
  }
  EXPECT_GT(drops, 400);  // roughly the configured probability
  EXPECT_LT(drops, 600);
}

// ------------------------------------------------------------- quorum

TEST(Quorum, AllReduceExcludesPartitionedRankAndRescales) {
  // 4 ranks; rank 3 is cut off by a never-healing partition. The
  // majority side excludes it and rescales by the surviving weight.
  comm::GroupOptions options;
  options.size = 4;
  options.timeout_seconds = 5.0;
  options.fabric = sim::FabricModel::uniform_latency(1e-5);
  options.fabric.faults.enabled = true;
  options.fabric.faults.partition_side = {0, 0, 0, 1};
  options.fabric.faults.partition_heal_seconds = -1.0;
  comm::ProcessGroup group(options);
  group.set_quorum({/*enabled=*/true, /*min_quorum=*/0});

  EXPECT_FALSE(group.reachable(0, 3));
  EXPECT_TRUE(group.reachable(0, 2));
  EXPECT_EQ(group.reachable_ranks(0), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(group.reachable_ranks(3), (std::vector<int>{3}));

  std::vector<std::vector<double>> data = {{0.0}, {1.0}, {2.0}, {30.0}};
  std::vector<comm::QuorumOutcome> outcomes(3);
  std::vector<std::thread> threads;
  for (int rank = 0; rank < 3; ++rank) {
    threads.emplace_back([&, rank] {
      const double weight = rank + 1.0;  // GNS weights 1, 2, 3
      outcomes[static_cast<std::size_t>(rank)] = comm::quorum_weighted_all_reduce(
          group.communicator(rank), data[static_cast<std::size_t>(rank)],
          weight, 11);
    });
  }
  for (auto& t : threads) t.join();

  // (1*0 + 2*1 + 3*2) / (1+2+3) = 8/6; all survivors agree bitwise.
  for (int rank = 0; rank < 3; ++rank) {
    const auto r = static_cast<std::size_t>(rank);
    EXPECT_DOUBLE_EQ(data[r][0], 8.0 / 6.0);
    EXPECT_EQ(outcomes[r].excluded, (std::vector<int>{3}));
    EXPECT_DOUBLE_EQ(outcomes[r].surviving_weight, 6.0);
    EXPECT_DOUBLE_EQ(outcomes[r].rescale, 1.0 / 6.0);
    EXPECT_TRUE(outcomes[r].degraded());
  }
  EXPECT_EQ(data[0], data[1]);
  EXPECT_EQ(data[0], data[2]);
}

TEST(Quorum, MinoritySideRefusesToReduce) {
  // 2-2 split: neither side has a strict majority (3 of 4); both must
  // throw QuorumLostError rather than train on a partitioned cluster.
  comm::GroupOptions options;
  options.size = 4;
  options.timeout_seconds = 5.0;
  options.fabric = sim::FabricModel::uniform_latency(1e-5);
  options.fabric.faults.enabled = true;
  options.fabric.faults.partition_side = {0, 0, 1, 1};
  options.fabric.faults.partition_heal_seconds = -1.0;
  comm::ProcessGroup group(options);
  group.set_quorum({/*enabled=*/true, /*min_quorum=*/0});

  std::atomic<int> quorum_lost{0};
  std::vector<std::thread> threads;
  for (int rank = 0; rank < 4; ++rank) {
    threads.emplace_back([&, rank] {
      std::vector<double> data{1.0};
      try {
        comm::quorum_weighted_all_reduce(group.communicator(rank), data, 1.0,
                                         5);
      } catch (const comm::QuorumLostError&) {
        quorum_lost.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(quorum_lost.load(), 4);
}

TEST(Quorum, RequiresQuorumModeEnabled) {
  comm::ProcessGroup group(2);
  std::vector<double> data{1.0};
  EXPECT_THROW(
      comm::quorum_weighted_all_reduce(group.communicator(0), data, 1.0, 1),
      comm::CommError);
}

// ------------------------------------------- lossy-link training (DDP)

TEST(LossyLink, TrainingConvergesThroughRetriesWithoutDiscardingEpochs) {
  // Flaky fabric (5% per-attempt drop) under a retry budget that makes
  // end-to-end loss negligible: training must complete every epoch --
  // no epoch discarded, no comm error -- and reach bitwise-identical
  // parameters to the clean run, because retries only delay delivery.
  const auto dataset = dnn::make_gaussian_mixture(240, 10, 3, 3.5, 42);
  const auto factory = [] { return dnn::make_mlp(10, 16, 1, 3); };

  dnn::TrainerOptions clean;
  clean.num_nodes = 3;
  clean.base_lr = 0.05;
  clean.lr_scaling = dnn::LrScaling::kNone;
  clean.initial_total_batch = 60;
  clean.seed = 7;

  dnn::TrainerOptions lossy = clean;
  lossy.comm_timeout_seconds = 20.0;
  lossy.comm_fabric = sim::FabricModel::uniform_latency(1e-6);
  lossy.comm_fabric.faults.enabled = true;
  lossy.comm_fabric.faults.drop_probability = 0.05;
  lossy.comm_fabric.faults.seed = 13;
  lossy.comm_retry.max_attempts = 8;
  lossy.comm_retry.backoff_initial_seconds = 1e-5;
  lossy.comm_retry.seed = 13;
  obs::MetricsRegistry metrics;
  lossy.obs = obs::Scope(nullptr, &metrics);

  dnn::ParallelTrainer reference(&dataset, factory, clean);
  dnn::ParallelTrainer trainer(&dataset, factory, lossy);
  for (int epoch = 0; epoch < 2; ++epoch) {
    reference.run_epoch({30, 20, 10});
    trainer.run_epoch({30, 20, 10});  // throws if an epoch is lost
  }

  ASSERT_EQ(trainer.params().size(), reference.params().size());
  for (std::size_t i = 0; i < trainer.params().size(); ++i) {
    EXPECT_EQ(trainer.params()[i], reference.params()[i]) << "param " << i;
  }
  // The lossy run really did lose frames -- and retransmitted them all.
  EXPECT_GT(metrics.counter("comm.retry.resends"), 0.0);
  EXPECT_DOUBLE_EQ(metrics.counter("comm.retry.dropped"), 0.0);
}

// ------------------------------------------------------ chaos harness

ChaosConfig small_config(std::uint64_t seed) {
  ChaosConfig config;
  config.ranks = 64;
  config.rounds = 6;
  config.num_faults = 5;
  config.seed = seed;
  return config;
}

TEST(ChaosHarness, FaultFreeRunCommitsEveryRound) {
  ChaosConfig config = small_config(3);
  config.num_faults = 0;
  const ChaosResult result = chaos::run_chaos_seed(config);
  EXPECT_TRUE(result.ok) << chaos::describe_schedule(
      chaos::make_chaos_schedule(config));
  EXPECT_EQ(result.rounds_completed, config.rounds);
  EXPECT_EQ(result.rounds_discarded, 0);
  EXPECT_EQ(result.typed_errors, 0u);
  EXPECT_FALSE(result.gave_up);
  EXPECT_GT(result.events, 0u);
}

TEST(ChaosHarness, ScheduleGenerationIsDeterministic) {
  const ChaosConfig config = small_config(17);
  const ChaosSchedule a = chaos::make_chaos_schedule(config);
  const ChaosSchedule b = chaos::make_chaos_schedule(config);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].describe(), b.faults[i].describe());
  }
}

TEST(ChaosHarness, FuzzManySeedsWithoutViolations) {
  // The in-tree slice of the acceptance sweep (bench/chaos_fuzz runs
  // the full 500): every seeded schedule must hold every invariant.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const ChaosConfig config = small_config(seed);
    const ChaosSchedule schedule = chaos::make_chaos_schedule(config);
    const ChaosResult result = chaos::run_chaos_schedule(config, schedule);
    EXPECT_TRUE(result.ok) << "seed " << seed << "\n"
                           << chaos::describe_schedule(schedule) << "first: "
                           << (result.violations.empty()
                                   ? ""
                                   : result.violations.front().invariant +
                                         ": " +
                                         result.violations.front().detail);
  }
}

TEST(ChaosHarness, FuzzAtTwoHundredFiftySixRanks) {
  for (std::uint64_t seed = 100; seed < 104; ++seed) {
    ChaosConfig config = small_config(seed);
    config.ranks = 256;
    const ChaosSchedule schedule = chaos::make_chaos_schedule(config);
    const ChaosResult result = chaos::run_chaos_schedule(config, schedule);
    EXPECT_TRUE(result.ok) << "seed " << seed << "\n"
                           << chaos::describe_schedule(schedule);
  }
}

TEST(ChaosHarness, ReplayOfTheSameSeedIsBitwiseIdentical) {
  for (const std::uint64_t seed : {5ULL, 21ULL, 33ULL}) {
    const ChaosConfig config = small_config(seed);
    const ChaosSchedule schedule = chaos::make_chaos_schedule(config);
    const ChaosResult result =
        chaos::check_replay_determinism(config, schedule);
    EXPECT_TRUE(result.ok) << "seed " << seed << "\n"
                           << chaos::describe_schedule(schedule);
  }
}

TEST(ChaosHarness, CrashRestoresFromCheckpointOrGivesUpCleanly) {
  // Sweep seeds until the generator produces a process crash, then
  // check the restore-or-clean-give-up invariant fired visibly.
  bool saw_restore_or_give_up = false;
  for (std::uint64_t seed = 1; seed <= 40 && !saw_restore_or_give_up;
       ++seed) {
    const ChaosConfig config = small_config(seed);
    const ChaosSchedule schedule = chaos::make_chaos_schedule(config);
    bool has_process_crash = false;
    for (const auto& fault : schedule.faults) {
      has_process_crash |= fault.process_crash;
    }
    if (!has_process_crash) continue;
    const ChaosResult result = chaos::run_chaos_schedule(config, schedule);
    EXPECT_TRUE(result.ok) << chaos::describe_schedule(schedule);
    saw_restore_or_give_up = result.restores > 0 || result.gave_up;
  }
  EXPECT_TRUE(saw_restore_or_give_up);
}

TEST(ChaosHarness, ShrinkerReducesToTheMinimalSchedule) {
  // Force a synthetic violation on kCheckpointCorrupt: the shrinker
  // must strip every other fault and keep exactly one reproducer.
  ChaosConfig config = small_config(2);
  config.forced_violation_kind =
      static_cast<int>(sim::FaultKind::kCheckpointCorrupt);

  ChaosSchedule schedule;
  schedule.seed = 2;
  for (int i = 0; i < 6; ++i) {
    chaos::ChaosFault fault;
    fault.kind = sim::FaultKind::kTransientStraggler;
    fault.round = i % 3;
    fault.node = i;
    schedule.faults.push_back(fault);
  }
  chaos::ChaosFault corrupt;
  corrupt.kind = sim::FaultKind::kCheckpointCorrupt;
  corrupt.round = 2;
  schedule.faults.push_back(corrupt);

  ASSERT_FALSE(chaos::run_chaos_schedule(config, schedule).ok);
  const ChaosSchedule minimal = chaos::shrink_schedule(config, schedule);
  ASSERT_EQ(minimal.faults.size(), 1u);
  EXPECT_EQ(minimal.faults[0].kind, sim::FaultKind::kCheckpointCorrupt);
  EXPECT_FALSE(chaos::run_chaos_schedule(config, minimal).ok);
}

TEST(ChaosHarness, ShrinkerReturnsCleanSchedulesUntouched) {
  const ChaosConfig config = small_config(3);
  const ChaosSchedule schedule = chaos::make_chaos_schedule(config);
  ASSERT_TRUE(chaos::run_chaos_schedule(config, schedule).ok);
  const ChaosSchedule same = chaos::shrink_schedule(config, schedule);
  EXPECT_EQ(same.faults.size(), schedule.faults.size());
}

}  // namespace
}  // namespace cannikin
