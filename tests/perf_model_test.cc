// Tests for the online performance-model learner (Sections 3.2 / 4.5):
// per-node linear fits, shared-parameter combination, readiness rules,
// and the inverse-variance-vs-mean ablation of Section 5.3.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/perf_model.h"

namespace cannikin::core {
namespace {

TEST(NodePerfLearner, NotReadyUntilTwoDistinctBatches) {
  NodePerfLearner learner;
  EXPECT_FALSE(learner.ready());
  learner.observe(32, 0.1, 0.2);
  EXPECT_FALSE(learner.ready());
  learner.observe(32, 0.1, 0.2);  // same batch size: still 1 point
  EXPECT_FALSE(learner.ready());
  EXPECT_FALSE(learner.fit().has_value());
  learner.observe(64, 0.15, 0.3);
  EXPECT_TRUE(learner.ready());
  EXPECT_EQ(learner.num_distinct_batches(), 2u);
}

TEST(NodePerfLearner, RecoversExactLinearModel) {
  // a(b) = 0.002 b + 0.01, P(b) = 0.004 b + 0.005 (Eq. 3).
  NodePerfLearner learner;
  for (int b : {16, 32, 64, 128}) {
    learner.observe(b, 0.002 * b + 0.01, 0.004 * b + 0.005);
  }
  const auto model = learner.fit();
  ASSERT_TRUE(model.has_value());
  EXPECT_NEAR(model->q, 0.002, 1e-12);
  EXPECT_NEAR(model->s, 0.01, 1e-12);
  EXPECT_NEAR(model->k, 0.004, 1e-12);
  EXPECT_NEAR(model->m, 0.005, 1e-12);
}

TEST(NodePerfLearner, RepeatedObservationsRefineUnderNoise) {
  Rng rng(1);
  NodePerfLearner noisy_few, noisy_many;
  auto a_true = [](int b) { return 0.002 * b + 0.01; };
  auto p_true = [](int b) { return 0.004 * b + 0.005; };
  for (int rep = 0; rep < 50; ++rep) {
    for (int b : {16, 64, 256}) {
      const double a = a_true(b) * rng.lognormal_jitter(0.05);
      const double p = p_true(b) * rng.lognormal_jitter(0.05);
      noisy_many.observe(b, a, p);
      if (rep == 0) noisy_few.observe(b, a, p);
    }
  }
  const auto few = noisy_few.fit();
  const auto many = noisy_many.fit();
  ASSERT_TRUE(few && many);
  EXPECT_LT(std::abs(many->q - 0.002), std::abs(few->q - 0.002) + 1e-4);
  EXPECT_NEAR(many->q, 0.002, 2e-4);
  EXPECT_NEAR(many->k, 0.004, 4e-4);
}

TEST(NodePerfLearner, ClampsUnphysicalCoefficients) {
  NodePerfLearner learner;
  // Decreasing observations would fit a negative slope.
  learner.observe(10, 0.2, 0.2);
  learner.observe(100, 0.1, 0.1);
  const auto model = learner.fit();
  ASSERT_TRUE(model.has_value());
  EXPECT_GT(model->q, 0.0);
  EXPECT_GE(model->s, 0.0);
}

TEST(NodePerfLearner, Validation) {
  NodePerfLearner learner;
  EXPECT_THROW(learner.observe(0, 0.1, 0.1), std::invalid_argument);
  EXPECT_THROW(learner.observe(8, -0.1, 0.1), std::invalid_argument);
}

TEST(CommParamLearner, CombinesAcrossNodes) {
  CommParamLearner learner(3);
  EXPECT_FALSE(learner.ready());
  EXPECT_FALSE(learner.estimate().has_value());
  for (int node = 0; node < 3; ++node) {
    learner.observe(node, 0.2, 0.5, 0.1);
  }
  ASSERT_TRUE(learner.ready());
  const auto est = learner.estimate();
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->gamma, 0.2, 1e-12);
  EXPECT_NEAR(est->t_other, 0.5, 1e-12);
  EXPECT_NEAR(est->t_last, 0.1, 1e-12);
  EXPECT_NEAR(est->total(), 0.6, 1e-12);
}

TEST(CommParamLearner, InverseVarianceBeatsMeanUnderHeteroscedasticNoise) {
  // Node 0 measures precisely, node 1 is very noisy and biased upward
  // by its log-normal error; inverse-variance weighting must land
  // closer to the truth than plain averaging, consistently.
  const double truth = 0.2;
  Rng rng(9);
  double ivw_err = 0.0, mean_err = 0.0;
  const int repetitions = 40;
  for (int rep = 0; rep < repetitions; ++rep) {
    CommParamLearner ivw(2, CombineMode::kInverseVariance);
    CommParamLearner avg(2, CombineMode::kMean);
    for (int epoch = 0; epoch < 30; ++epoch) {
      const double clean = truth * rng.lognormal_jitter(0.01);
      const double noisy = truth * rng.lognormal_jitter(0.5);
      ivw.observe(0, clean, clean, clean);
      ivw.observe(1, noisy, noisy, noisy);
      avg.observe(0, clean, clean, clean);
      avg.observe(1, noisy, noisy, noisy);
    }
    ivw_err += std::abs(ivw.estimate()->gamma - truth);
    mean_err += std::abs(avg.estimate()->gamma - truth);
  }
  EXPECT_LT(ivw_err, mean_err);
}

TEST(CommParamLearner, Validation) {
  EXPECT_THROW(CommParamLearner(0), std::invalid_argument);
  CommParamLearner learner(2);
  EXPECT_THROW(learner.observe(5, 0.1, 0.1, 0.1), std::out_of_range);
}

TEST(ClusterPerfModel, ReadyOnlyWhenAllNodesReady) {
  ClusterPerfModel model(2);
  model.observe_epoch({16, 16}, {0.1, 0.2}, {0.2, 0.4}, {0.2, 0.2},
                      {0.5, 0.5}, {0.1, 0.1});
  EXPECT_FALSE(model.ready());
  // Node 1 receives no work in epoch 2: it stays at one batch size.
  model.observe_epoch({32, 0}, {0.15, 0.0}, {0.3, 0.0}, {0.2, 0.0},
                      {0.5, 0.0}, {0.1, 0.0});
  EXPECT_FALSE(model.ready());
  model.observe_epoch({32, 32}, {0.15, 0.3}, {0.3, 0.6}, {0.2, 0.2},
                      {0.5, 0.5}, {0.1, 0.1});
  EXPECT_TRUE(model.ready());

  const auto models = model.node_models();
  ASSERT_TRUE(models.has_value());
  ASSERT_EQ(models->size(), 2u);
  EXPECT_NEAR((*models)[0].q + (*models)[0].k, (0.45 - 0.3) / 16.0, 1e-9);
}

TEST(ClusterPerfModel, CapsPropagateToModels) {
  ClusterPerfModel model(2);
  model.set_max_batches({100.0, 200.0});
  model.observe_epoch({16, 16}, {0.1, 0.2}, {0.2, 0.4}, {0.2, 0.2},
                      {0.5, 0.5}, {0.1, 0.1});
  model.observe_epoch({32, 32}, {0.15, 0.3}, {0.3, 0.6}, {0.2, 0.2},
                      {0.5, 0.5}, {0.1, 0.1});
  const auto models = model.node_models();
  ASSERT_TRUE(models.has_value());
  EXPECT_DOUBLE_EQ((*models)[0].max_batch, 100.0);
  EXPECT_DOUBLE_EQ((*models)[1].max_batch, 200.0);
  EXPECT_THROW(model.set_max_batches({1.0}), std::invalid_argument);
}

TEST(ClusterPerfModel, SizeMismatchThrows) {
  ClusterPerfModel model(2);
  EXPECT_THROW(model.observe_epoch({16}, {0.1}, {0.2}, {0.2}, {0.5}, {0.1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cannikin::core
