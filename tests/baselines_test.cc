// Tests for the baseline policies: DDP, AdaptDL, LB-BSP, HetPipe.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/adaptdl.h"
#include "baselines/ddp.h"
#include "baselines/hetpipe.h"
#include "baselines/lbbsp.h"
#include "sim/cluster_factory.h"
#include "workloads/registry.h"

namespace cannikin::baselines {
namespace {

sim::ClusterJob make_job(const sim::ClusterSpec& spec) {
  return sim::ClusterJob(spec, workloads::by_name("cifar10").profile,
                         sim::NoiseConfig::none(), 1);
}

std::vector<double> caps_of(const sim::ClusterJob& job) {
  std::vector<double> caps;
  for (int i = 0; i < job.size(); ++i) caps.push_back(job.max_local_batch(i));
  return caps;
}

// --------------------------------------------------------------------- DDP

TEST(Ddp, EvenSplitFixedForever) {
  auto job = make_job(sim::cluster_a());
  DdpSystem ddp(3, 120, caps_of(job));
  for (int epoch = 0; epoch < 3; ++epoch) {
    const auto plan = ddp.plan_epoch();
    EXPECT_EQ(plan.total_batch, 120);
    EXPECT_EQ(plan.local_batches, (std::vector<int>{40, 40, 40}));
    ddp.observe_epoch(job.run_epoch(plan.local_batches, 2));
  }
}

TEST(Ddp, UnevenTotalRoundsToSum) {
  auto job = make_job(sim::cluster_a());
  DdpSystem ddp(3, 100, caps_of(job));
  const auto plan = ddp.plan_epoch();
  int total = 0;
  for (int b : plan.local_batches) total += b;
  EXPECT_EQ(total, 100);
}

TEST(Ddp, Validation) {
  EXPECT_THROW(DdpSystem(0, 10, {}), std::invalid_argument);
  EXPECT_THROW(DdpSystem(2, 0, {10.0, 10.0}), std::invalid_argument);
}

// ----------------------------------------------------------------- LB-BSP

TEST(LbBsp, ConvergesTowardEqualComputeTime) {
  auto job = make_job(sim::cluster_a());
  LbBspSystem lbbsp(3, 120, caps_of(job), 5);

  double first_spread = -1.0;
  double spread = 0.0;
  for (int epoch = 0; epoch < 40; ++epoch) {
    const auto plan = lbbsp.plan_epoch();
    const auto obs = job.run_epoch(plan.local_batches, 2);
    lbbsp.observe_epoch(obs);
    double lo = 1e9, hi = 0.0;
    for (const auto& node : obs.nodes) {
      lo = std::min(lo, node.a + node.p);
      hi = std::max(hi, node.a + node.p);
    }
    spread = hi - lo;
    if (first_spread < 0.0) first_spread = spread;
  }
  EXPECT_LT(spread, 0.25 * first_spread);
}

TEST(LbBsp, StepLimitsPerEpochMovement) {
  auto job = make_job(sim::cluster_a());
  LbBspSystem lbbsp(3, 120, caps_of(job), 5);
  auto plan = lbbsp.plan_epoch();
  lbbsp.observe_epoch(job.run_epoch(plan.local_batches, 2));
  const auto before = plan.local_batches;
  plan = lbbsp.plan_epoch();
  for (std::size_t i = 0; i < before.size(); ++i) {
    // Rounding can add one extra sample on top of the +-5 step.
    EXPECT_LE(std::abs(plan.local_batches[i] - before[i]), 6);
  }
}

TEST(LbBsp, BatchesAlwaysSumToTotal) {
  auto job = make_job(sim::cluster_b());
  LbBspSystem lbbsp(16, 256, caps_of(job), 5);
  for (int epoch = 0; epoch < 15; ++epoch) {
    const auto plan = lbbsp.plan_epoch();
    int total = 0;
    for (int b : plan.local_batches) total += b;
    EXPECT_EQ(total, 256);
    lbbsp.observe_epoch(job.run_epoch(plan.local_batches, 2));
  }
}

TEST(LbBsp, SetTotalBatchRescalesProportionally) {
  auto job = make_job(sim::cluster_a());
  LbBspSystem lbbsp(3, 120, caps_of(job), 5);
  for (int epoch = 0; epoch < 30; ++epoch) {
    lbbsp.observe_epoch(job.run_epoch(lbbsp.plan_epoch().local_batches, 2));
  }
  const auto tuned = lbbsp.local_batches();
  lbbsp.set_total_batch(240);
  const auto rescaled = lbbsp.local_batches();
  int total = 0;
  for (std::size_t i = 0; i < rescaled.size(); ++i) {
    total += rescaled[i];
    EXPECT_NEAR(rescaled[i], 2.0 * tuned[i], 3.0);
  }
  EXPECT_EQ(total, 240);
  EXPECT_THROW(lbbsp.set_total_batch(0), std::invalid_argument);
}

// ---------------------------------------------------------------- AdaptDL

TEST(AdaptDl, AlwaysEvenSplit) {
  auto job = make_job(sim::cluster_b());
  AdaptDlSystem adaptdl(16, 64, 4096, caps_of(job));
  adaptdl.observe_gns(500.0);
  for (int epoch = 0; epoch < 5; ++epoch) {
    const auto plan = adaptdl.plan_epoch();
    const int expected = plan.total_batch / 16;
    for (int b : plan.local_batches) {
      EXPECT_NEAR(b, expected, 1.0);
    }
    adaptdl.observe_epoch(job.run_epoch(plan.local_batches, 2));
  }
}

TEST(AdaptDl, GrowsBatchWhenNoiseHigh) {
  auto job = make_job(sim::cluster_b());
  AdaptDlSystem adaptdl(16, 64, 4096, caps_of(job));
  adaptdl.observe_gns(1e5);
  int last_total = 0;
  for (int epoch = 0; epoch < 10; ++epoch) {
    const auto plan = adaptdl.plan_epoch();
    last_total = plan.total_batch;
    adaptdl.observe_epoch(job.run_epoch(plan.local_batches, 2));
  }
  EXPECT_GT(last_total, 1000);
}

TEST(AdaptDl, StaysSmallWhenNoiseLow) {
  auto job = make_job(sim::cluster_b());
  AdaptDlSystem adaptdl(16, 64, 4096, caps_of(job));
  adaptdl.observe_gns(0.0);
  for (int epoch = 0; epoch < 6; ++epoch) {
    const auto plan = adaptdl.plan_epoch();
    EXPECT_LE(plan.total_batch, 128);
    adaptdl.observe_epoch(job.run_epoch(plan.local_batches, 2));
  }
}

// ---------------------------------------------------------------- HetPipe

TEST(HetPipe, BatchTimeScalesWithBatchAndBubble) {
  auto job = make_job(sim::cluster_b());
  HetPipeSystem small(&job, 64, 4);
  HetPipeSystem large(&job, 256, 4);
  EXPECT_GT(large.batch_time(), small.batch_time());

  const auto plan = small.plan_epoch();
  EXPECT_GT(plan.batch_time_override, 0.0);
  EXPECT_TRUE(plan.local_batches.empty());
  EXPECT_EQ(plan.total_batch, 64);
}

TEST(HetPipe, FasterClusterFasterPipeline) {
  // Compute-heavy profile and a fast interconnect so stage compute
  // (not activation transfer or launch overhead) dominates the
  // pipeline step; on the default 10 GbE the pipeline is honestly
  // transfer-bound and GPU speed cancels out.
  auto make_heavy = [](sim::ClusterSpec spec) {
    spec.network.bandwidth_bytes_per_s = 12.5e9;  // 100 Gbps
    return sim::ClusterJob(spec, workloads::by_name("imagenet").profile,
                           sim::NoiseConfig::none(), 1);
  };
  auto b = make_heavy(sim::cluster_b());
  auto c = make_heavy(sim::cluster_c());  // contended RTX-only cluster
  HetPipeSystem on_b(&b, 128, 4);
  HetPipeSystem on_c(&c, 128, 4);
  EXPECT_LT(on_b.batch_time(), on_c.batch_time());
}

TEST(HetPipe, Validation) {
  auto job = make_job(sim::cluster_a());
  EXPECT_THROW(HetPipeSystem(nullptr, 64), std::invalid_argument);
  EXPECT_THROW(HetPipeSystem(&job, 0), std::invalid_argument);
  EXPECT_THROW(HetPipeSystem(&job, 64, 0), std::invalid_argument);
}

}  // namespace
}  // namespace cannikin::baselines
