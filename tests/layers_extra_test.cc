// Tests for the extra layers (Embedding, MaxPool2x2, Dropout,
// LayerNorm) and the model zoo: every Table 5 stand-in trains on real
// gradients through the data-parallel trainer.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dnn/layers_extra.h"
#include "dnn/model.h"
#include "dnn/parallel_trainer.h"
#include "dnn/zoo.h"

namespace cannikin::dnn {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = rng.normal();
  return t;
}

// Central finite-difference check of a layer's parameter gradients via
// Loss = sum(output * probe).
void param_gradient_check(Layer& layer, const Tensor& input,
                          double tolerance) {
  Rng rng(3);
  Tensor probe = layer.forward(input);
  for (std::size_t i = 0; i < probe.size(); ++i) probe[i] = rng.normal();

  layer.zero_grads();
  layer.forward(input);
  layer.backward(probe);
  std::vector<double> analytic(layer.num_params());
  layer.copy_grads(analytic);

  std::vector<double> params(layer.num_params());
  layer.copy_params(params);
  auto loss_at = [&] {
    const Tensor out = layer.forward(input);
    double total = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) total += out[i] * probe[i];
    return total;
  };
  const double eps = 1e-5;
  for (std::size_t p = 0; p < params.size();
       p += std::max<std::size_t>(1, params.size() / 20)) {
    std::vector<double> bumped = params;
    bumped[p] += eps;
    layer.set_params(bumped);
    const double up = loss_at();
    bumped[p] -= 2 * eps;
    layer.set_params(bumped);
    const double down = loss_at();
    layer.set_params(params);
    EXPECT_NEAR(analytic[p], (up - down) / (2 * eps), tolerance)
        << "param " << p;
  }
}

// -------------------------------------------------------------- Embedding

TEST(Embedding, LooksUpRowsAndConcatenates) {
  Embedding embedding(5, 3);
  std::vector<double> table(15);
  for (std::size_t i = 0; i < 15; ++i) table[i] = static_cast<double>(i);
  embedding.set_params(table);

  Tensor ids = Tensor::matrix(2, 2);
  ids.at(0, 0) = 1;
  ids.at(0, 1) = 4;
  ids.at(1, 0) = 0;
  ids.at(1, 1) = 0;
  const Tensor out = embedding.forward(ids);
  const std::vector<std::size_t> out_shape(out.shape().begin(),
                                           out.shape().end());
  ASSERT_EQ(out_shape, (std::vector<std::size_t>{2, 6}));
  EXPECT_DOUBLE_EQ(out.at(0, 0), 3.0);   // row 1 starts at 3
  EXPECT_DOUBLE_EQ(out.at(0, 3), 12.0);  // row 4 starts at 12
  EXPECT_DOUBLE_EQ(out.at(1, 5), 2.0);   // row 0 third element
}

TEST(Embedding, GradientAccumulatesPerRowWithRepeats) {
  Embedding embedding(4, 2);
  Rng rng(1);
  embedding.init(rng);
  Tensor ids = Tensor::matrix(1, 2);
  ids.at(0, 0) = 2;
  ids.at(0, 1) = 2;  // same row twice: gradients must add
  embedding.zero_grads();
  embedding.forward(ids);
  Tensor grad = Tensor::matrix(1, 4);
  grad[0] = 1.0;
  grad[1] = 2.0;
  grad[2] = 10.0;
  grad[3] = 20.0;
  embedding.backward(grad);
  std::vector<double> grads(embedding.num_params());
  embedding.copy_grads(grads);
  EXPECT_DOUBLE_EQ(grads[2 * 2], 11.0);
  EXPECT_DOUBLE_EQ(grads[2 * 2 + 1], 22.0);
  // Untouched rows stay zero.
  EXPECT_DOUBLE_EQ(grads[0], 0.0);
}

TEST(Embedding, ParamGradientCheckAndValidation) {
  Embedding embedding(6, 3);
  Rng rng(2);
  embedding.init(rng);
  Tensor ids = Tensor::matrix(3, 2);
  ids.at(0, 0) = 0;
  ids.at(0, 1) = 5;
  ids.at(1, 0) = 2;
  ids.at(1, 1) = 2;
  ids.at(2, 0) = 4;
  ids.at(2, 1) = 1;
  param_gradient_check(embedding, ids, 1e-6);

  Tensor bad = Tensor::matrix(1, 1);
  bad[0] = 6;
  EXPECT_THROW(embedding.forward(bad), std::out_of_range);
  EXPECT_THROW(Embedding(0, 3), std::invalid_argument);
}

// ------------------------------------------------------------- MaxPool2x2

TEST(MaxPool2x2, ForwardPicksMaxBackwardRoutesToArgmax) {
  MaxPool2x2 pool;
  Tensor input({1, 1, 2, 2});
  input[0] = 1.0;
  input[1] = 9.0;
  input[2] = 3.0;
  input[3] = 4.0;
  const Tensor out = pool.forward(input);
  EXPECT_DOUBLE_EQ(out[0], 9.0);

  Tensor grad({1, 1, 1, 1});
  grad[0] = 5.0;
  const Tensor back = pool.backward(grad);
  EXPECT_DOUBLE_EQ(back[1], 5.0);
  EXPECT_DOUBLE_EQ(back[0], 0.0);
  EXPECT_THROW(pool.forward(Tensor({1, 1, 3, 3})), std::invalid_argument);
}

// ---------------------------------------------------------------- Dropout

TEST(Dropout, EvalModeIsIdentity) {
  Dropout dropout(0.5, 1);
  dropout.set_training(false);
  Rng rng(4);
  const Tensor input = random_tensor({3, 5}, rng);
  const Tensor out = dropout.forward(input);
  EXPECT_EQ(out.storage(), input.storage());
}

TEST(Dropout, TrainingMaskIsUnbiasedAndBackwardMatches) {
  Dropout dropout(0.3, 7);
  Tensor input = Tensor::matrix(1, 4000, 1.0);
  const Tensor out = dropout.forward(input);
  double mean = 0.0;
  int zeros = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    mean += out[i];
    zeros += out[i] == 0.0;
  }
  mean /= static_cast<double>(out.size());
  EXPECT_NEAR(mean, 1.0, 0.05);  // inverted dropout preserves scale
  EXPECT_NEAR(zeros / 4000.0, 0.3, 0.05);

  // Backward applies the identical mask.
  Tensor grad = Tensor::matrix(1, 4000, 2.0);
  const Tensor back = dropout.backward(grad);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i], out[i] * 2.0);
  }
  EXPECT_THROW(Dropout(1.0), std::invalid_argument);
}

// --------------------------------------------------------------- LayerNorm

TEST(LayerNorm, NormalizesRows) {
  LayerNorm norm(4);
  Rng rng(5);
  norm.init(rng);
  Tensor input = Tensor::matrix(2, 4);
  for (std::size_t i = 0; i < 8; ++i) input[i] = static_cast<double>(i * i);
  const Tensor out = norm.forward(input);
  for (std::size_t r = 0; r < 2; ++r) {
    double mean = 0.0, var = 0.0;
    for (std::size_t c = 0; c < 4; ++c) mean += out.at(r, c);
    mean /= 4.0;
    for (std::size_t c = 0; c < 4; ++c) {
      var += (out.at(r, c) - mean) * (out.at(r, c) - mean);
    }
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var / 4.0, 1.0, 1e-4);
  }
}

TEST(LayerNorm, InputAndParamGradientCheck) {
  LayerNorm norm(6);
  Rng rng(6);
  norm.init(rng);
  // Perturb gain/bias away from identity to exercise all terms.
  std::vector<double> params(norm.num_params());
  norm.copy_params(params);
  for (auto& p : params) p += rng.normal(0.0, 0.2);
  norm.set_params(params);

  const Tensor input = random_tensor({3, 6}, rng);
  param_gradient_check(norm, input, 1e-5);

  // Input gradient via finite differences.
  Tensor probe = norm.forward(input);
  for (std::size_t i = 0; i < probe.size(); ++i) probe[i] = rng.normal();
  norm.zero_grads();
  norm.forward(input);
  const Tensor analytic = norm.backward(probe);
  auto loss_at = [&](const Tensor& x) {
    const Tensor out = norm.forward(x);
    double total = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) total += out[i] * probe[i];
    return total;
  };
  const double eps = 1e-6;
  for (std::size_t i = 0; i < input.size(); ++i) {
    Tensor bumped = input;
    bumped[i] += eps;
    const double up = loss_at(bumped);
    bumped[i] -= 2 * eps;
    const double down = loss_at(bumped);
    EXPECT_NEAR(analytic[i], (up - down) / (2 * eps), 1e-4) << "input " << i;
  }
}

// -------------------------------------------------------------- model zoo

class ZooTraining : public ::testing::TestWithParam<const char*> {};

TEST_P(ZooTraining, StandinTrainsOnUnevenLocalBatches) {
  ZooEntry entry = make_standin(GetParam(), 600, 13);

  TrainerOptions options;
  options.num_nodes = 3;
  options.base_lr = entry.base_lr;
  options.lr_scaling = entry.lr_scaling;
  options.use_adam = entry.use_adam;
  options.initial_total_batch = 48;
  options.seed = 21;
  options.task = entry.task;
  ParallelTrainer trainer(entry.dataset.get(), entry.factory, options);

  const double initial = trainer.evaluate_loss(*entry.dataset);
  for (int epoch = 0; epoch < 6; ++epoch) {
    trainer.run_epoch({24, 16, 8});
  }
  EXPECT_LT(trainer.evaluate_loss(*entry.dataset), initial) << GetParam();
  EXPECT_GE(trainer.current_gns(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ZooTraining,
                         ::testing::Values("cifar10", "imagenet",
                                           "librispeech", "squad",
                                           "movielens"));

TEST(Zoo, UnknownWorkloadThrows) {
  EXPECT_THROW(make_standin("mnist"), std::invalid_argument);
}

TEST(Zoo, NeumfEmbeddingModelShapes) {
  ZooEntry entry = make_neumf_standin(200, 30, 40, 3);
  Model model = entry.factory();
  Rng rng(1);
  model.init(rng);
  // (30 + 40) x 8 table + MLP.
  EXPECT_EQ(model.num_params(), 70u * 8 + (16u * 16 + 16) + (16u + 1));

  const std::size_t idx[] = {0, 1, 2};
  const Tensor inputs =
      entry.dataset->gather(std::span<const std::size_t>(idx, 3));
  const Tensor out = model.forward(inputs);
  const std::vector<std::size_t> out_shape(out.shape().begin(),
                                           out.shape().end());
  EXPECT_EQ(out_shape, (std::vector<std::size_t>{3, 1}));
}

}  // namespace
}  // namespace cannikin::dnn
