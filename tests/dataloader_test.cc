// Tests for HeteroDataLoader (Section 4.5) and the Eq. (9) gradient
// aggregation helpers.
#include <gtest/gtest.h>

#include <set>

#include "core/gradient_agg.h"
#include "core/hetero_dataloader.h"

namespace cannikin::core {
namespace {

TEST(HeteroDataLoader, EverySampleExactlyOncePerEpoch) {
  HeteroDataLoader loader(1000, {30, 20, 10}, 1);
  EXPECT_EQ(loader.total_batch(), 60);
  EXPECT_EQ(loader.num_batches(), 17);  // ceil(1000 / 60)

  std::set<std::size_t> seen;
  for (int batch = 0; batch < loader.num_batches(); ++batch) {
    for (int node = 0; node < loader.num_nodes(); ++node) {
      for (std::size_t index : loader.batch_for_node(batch, node)) {
        EXPECT_TRUE(seen.insert(index).second)
            << "index " << index << " assigned twice";
        EXPECT_LT(index, 1000u);
      }
    }
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(HeteroDataLoader, FullBatchesMatchRequestedSplit) {
  HeteroDataLoader loader(1000, {30, 20, 10}, 2);
  for (int batch = 0; batch + 1 < loader.num_batches(); ++batch) {
    EXPECT_EQ(loader.batch_size_for_node(batch, 0), 30);
    EXPECT_EQ(loader.batch_size_for_node(batch, 1), 20);
    EXPECT_EQ(loader.batch_size_for_node(batch, 2), 10);
  }
}

TEST(HeteroDataLoader, PartialFinalBatchSplitsProportionally) {
  // 1000 = 16 * 60 + 40: the last batch has 40 samples, split 2:1:...
  HeteroDataLoader loader(1000, {30, 20, 10}, 3);
  const int last = loader.num_batches() - 1;
  int total = 0;
  for (int node = 0; node < 3; ++node) {
    total += loader.batch_size_for_node(last, node);
  }
  EXPECT_EQ(total, 40);
  EXPECT_EQ(loader.batch_size_for_node(last, 0), 20);
  EXPECT_EQ(loader.batch_size_for_node(last, 1), 13);
  EXPECT_EQ(loader.batch_size_for_node(last, 2), 7);
}

TEST(HeteroDataLoader, ZeroBatchNodeGetsNothing) {
  HeteroDataLoader loader(100, {10, 0, 10}, 4);
  for (int batch = 0; batch < loader.num_batches(); ++batch) {
    EXPECT_EQ(loader.batch_size_for_node(batch, 1), 0);
  }
}

TEST(HeteroDataLoader, ShuffleDependsOnSeed) {
  HeteroDataLoader a(100, {10, 10}, 1);
  HeteroDataLoader b(100, {10, 10}, 2);
  HeteroDataLoader c(100, {10, 10}, 1);
  const auto sa = a.batch_for_node(0, 0);
  const auto sb = b.batch_for_node(0, 0);
  const auto sc = c.batch_for_node(0, 0);
  EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sc.begin()));
  EXPECT_FALSE(std::equal(sa.begin(), sa.end(), sb.begin()));
}

TEST(HeteroDataLoader, DatasetSmallerThanTotalBatch) {
  HeteroDataLoader loader(25, {30, 20, 10}, 5);
  EXPECT_EQ(loader.num_batches(), 1);
  int total = 0;
  for (int node = 0; node < 3; ++node) {
    total += loader.batch_size_for_node(0, node);
  }
  EXPECT_EQ(total, 25);
}

TEST(HeteroDataLoader, Validation) {
  EXPECT_THROW(HeteroDataLoader(0, {10}, 1), std::invalid_argument);
  EXPECT_THROW(HeteroDataLoader(10, {}, 1), std::invalid_argument);
  EXPECT_THROW(HeteroDataLoader(10, {0, 0}, 1), std::invalid_argument);
  EXPECT_THROW(HeteroDataLoader(10, {-1, 2}, 1), std::invalid_argument);
  HeteroDataLoader loader(100, {10, 10}, 1);
  EXPECT_THROW(loader.batch_for_node(100, 0), std::out_of_range);
  EXPECT_THROW(loader.batch_for_node(0, 5), std::out_of_range);
}

// ---------------------------------------------------------------- Eq. (9)

TEST(AggregationWeights, ProportionalAndNormalized) {
  const auto weights = aggregation_weights({10, 30, 60});
  EXPECT_DOUBLE_EQ(weights[0], 0.1);
  EXPECT_DOUBLE_EQ(weights[1], 0.3);
  EXPECT_DOUBLE_EQ(weights[2], 0.6);
}

TEST(AggregationWeights, Validation) {
  EXPECT_THROW(aggregation_weights({-1, 2}), std::invalid_argument);
  EXPECT_THROW(aggregation_weights({0, 0}), std::invalid_argument);
}

TEST(AggregateGradients, EqualsSampleAverage) {
  // Three nodes with per-sample gradients g = 1, 2, 4; Eq. (9) must
  // reproduce the full-batch sample average.
  const std::vector<std::vector<double>> locals{{1.0}, {2.0}, {4.0}};
  const std::vector<int> batches{10, 20, 10};
  const auto global = aggregate_gradients(locals, batches);
  // (10*1 + 20*2 + 10*4) / 40 = 2.25.
  EXPECT_DOUBLE_EQ(global[0], 2.25);
}

TEST(AggregateGradients, EqualBatchesReduceToMean) {
  const std::vector<std::vector<double>> locals{{2.0, 4.0}, {6.0, 8.0}};
  const auto global = aggregate_gradients(locals, {16, 16});
  EXPECT_DOUBLE_EQ(global[0], 4.0);
  EXPECT_DOUBLE_EQ(global[1], 6.0);
}

TEST(AggregateGradients, Validation) {
  EXPECT_THROW(aggregate_gradients({}, {}), std::invalid_argument);
  EXPECT_THROW(aggregate_gradients({{1.0}, {1.0, 2.0}}, {1, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cannikin::core
