// Tests for the Table 5 workload registry and its convergence model.
#include <gtest/gtest.h>

#include "workloads/registry.h"

namespace cannikin::workloads {
namespace {

TEST(Registry, ContainsAllFiveTable5Workloads) {
  const auto& all = registry();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(by_name("imagenet").model, "ResNet-50");
  EXPECT_EQ(by_name("cifar10").model, "ResNet-18");
  EXPECT_EQ(by_name("librispeech").model, "DeepSpeech2");
  EXPECT_EQ(by_name("squad").model, "BERT");
  EXPECT_EQ(by_name("movielens").model, "NeuMF");
  EXPECT_THROW(by_name("mnist"), std::invalid_argument);
}

TEST(Registry, InitialBatchSizesMatchTable5) {
  EXPECT_EQ(by_name("imagenet").b0, 100);
  EXPECT_EQ(by_name("cifar10").b0, 64);
  EXPECT_EQ(by_name("librispeech").b0, 12);
  EXPECT_EQ(by_name("squad").b0, 9);
  EXPECT_EQ(by_name("movielens").b0, 64);
}

TEST(Registry, ModelSizesMatchTable5) {
  EXPECT_DOUBLE_EQ(by_name("imagenet").model_params, 25.6e6);
  EXPECT_DOUBLE_EQ(by_name("cifar10").model_params, 11e6);
  EXPECT_DOUBLE_EQ(by_name("librispeech").model_params, 52e6);
  EXPECT_DOUBLE_EQ(by_name("squad").model_params, 110e6);
  EXPECT_DOUBLE_EQ(by_name("movielens").model_params, 5.2e6);
  // Gradient bytes = fp32 parameters.
  for (const auto& w : registry()) {
    EXPECT_DOUBLE_EQ(w.profile.gradient_bytes, w.model_params * 4);
  }
}

TEST(Registry, OptimizersMatchTable5) {
  EXPECT_EQ(by_name("imagenet").optimizer, OptimizerKind::kSgd);
  EXPECT_EQ(by_name("squad").optimizer, OptimizerKind::kAdamW);
  EXPECT_EQ(by_name("movielens").optimizer, OptimizerKind::kAdam);
  EXPECT_EQ(by_name("cifar10").lr_scaler, LrScalerKind::kAdaScale);
  EXPECT_EQ(by_name("movielens").lr_scaler, LrScalerKind::kSquareRoot);
}

TEST(Workload, GnsTrajectoryIsMonotoneGeometric) {
  const auto& w = by_name("cifar10");
  EXPECT_DOUBLE_EQ(w.gns_at(0.0), w.gns_initial);
  EXPECT_DOUBLE_EQ(w.gns_at(1.0), w.gns_final);
  double previous = 0.0;
  for (double f = 0.0; f <= 1.0; f += 0.1) {
    const double phi = w.gns_at(f);
    EXPECT_GT(phi, previous);
    previous = phi;
  }
  // Clamped outside [0, 1].
  EXPECT_DOUBLE_EQ(w.gns_at(-1.0), w.gns_initial);
  EXPECT_DOUBLE_EQ(w.gns_at(2.0), w.gns_final);
}

TEST(Workload, EfficiencyAnchorsAtB0) {
  for (const auto& w : registry()) {
    EXPECT_DOUBLE_EQ(w.efficiency(w.b0, 0.0), 1.0);
    EXPECT_LT(w.efficiency(w.max_total_batch, 0.0), 1.0);
    // Efficiency at a large batch improves as training progresses
    // (GNS grows), which is what makes batch growth worthwhile.
    EXPECT_GT(w.efficiency(w.max_total_batch, 1.0),
              w.efficiency(w.max_total_batch, 0.0));
  }
}

TEST(Workload, TargetProgressIsEpochsTimesDataset) {
  const auto& w = by_name("squad");
  EXPECT_DOUBLE_EQ(w.target_progress(), 3.0 * 88568.0);
}

TEST(Workload, MetricCurveHitsTargetAtFullProgress) {
  for (const auto& w : registry()) {
    EXPECT_DOUBLE_EQ(w.metric_at(0.0), w.metric_floor);
    EXPECT_NEAR(w.metric_at(1.0), w.metric_target, 1e-9);
  }
  // WER falls: metric target below floor still works monotonically.
  const auto& speech = by_name("librispeech");
  EXPECT_GT(speech.metric_at(0.2), speech.metric_at(0.8));
}

TEST(Workload, BatchRangesFitClusterBMemory) {
  // Every workload's max total batch must be feasible on cluster B
  // (sum of memory caps), otherwise the adaptive range is fiction.
  for (const auto& w : registry()) {
    double total_mem_cap = 0.0;
    const double memories[] = {40, 40, 40, 40, 32, 32, 32, 32,
                               24, 24, 24, 24, 24, 24, 24, 24};
    for (double gb : memories) {
      total_mem_cap += gb * 0.8 * 1e9 / w.profile.mem_bytes_per_sample;
    }
    EXPECT_GE(total_mem_cap, w.max_total_batch) << w.name;
  }
}

}  // namespace
}  // namespace cannikin::workloads
