// Cross-cutting property sweeps: for every (workload x cluster)
// combination the OptPerf solver agrees with exhaustive search on real
// profiles, dominates practical assignments on the true simulator, and
// the controller's plans stay structurally valid across a whole
// adaptive run. Also stress tests for the in-process collectives.
#include <gtest/gtest.h>

#include <thread>

#include "comm/collectives.h"
#include "comm/process_group.h"
#include "common/rng.h"
#include "core/optperf.h"
#include "experiments/cannikin_system.h"
#include "experiments/harness.h"
#include "experiments/table.h"
#include "sim/cluster_factory.h"
#include "workloads/registry.h"

namespace cannikin {
namespace {

sim::ClusterSpec cluster_by_name(const std::string& name) {
  if (name == "a") return sim::cluster_a();
  if (name == "b") return sim::cluster_b();
  if (name == "bg") return sim::cluster_b_grouped();
  return sim::cluster_c();
}

class WorkloadClusterSweep
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
 protected:
  sim::ClusterJob make_job() const {
    const auto [workload, cluster] = GetParam();
    return sim::ClusterJob(cluster_by_name(cluster),
                           workloads::by_name(workload).profile,
                           sim::NoiseConfig::none(), 17);
  }
  const workloads::Workload& workload() const {
    return workloads::by_name(std::get<0>(GetParam()));
  }
};

TEST_P(WorkloadClusterSweep, SolverMatchesExhaustiveOnRealProfiles) {
  auto job = make_job();
  std::vector<core::NodeModel> models;
  for (int i = 0; i < job.size(); ++i) {
    const auto& t = job.truth(i);
    models.push_back(
        {t.q, t.s, t.k, t.m, static_cast<double>(t.max_local_batch)});
  }
  core::OptPerfSolver solver(models, {job.gamma(), job.comm().t_other,
                                      job.comm().t_last});
  const int b_lo = std::max(workload().b0, 2 * job.size());
  for (int step = 0; step <= 5; ++step) {
    const int total =
        b_lo + (workload().max_total_batch - b_lo) * step / 5;
    const auto fast = solver.solve(total);
    const auto exhaustive = solver.solve_exhaustive(total);
    EXPECT_NEAR(fast.batch_time, exhaustive.batch_time,
                1e-7 * exhaustive.batch_time)
        << "B=" << total;
    // Warm start agrees with itself.
    const auto warm =
        solver.solve_with_hint(total, fast.num_compute_bottleneck);
    EXPECT_NEAR(warm.batch_time, fast.batch_time, 1e-12);
  }
}

TEST_P(WorkloadClusterSweep, OptPerfDominatesPracticalAssignments) {
  auto job = make_job();
  std::vector<core::NodeModel> models;
  for (int i = 0; i < job.size(); ++i) {
    const auto& t = job.truth(i);
    models.push_back(
        {t.q, t.s, t.k, t.m, static_cast<double>(t.max_local_batch)});
  }
  core::OptPerfSolver solver(models, {job.gamma(), job.comm().t_other,
                                      job.comm().t_last});

  const int total = std::max(workload().b0, 4 * job.size());
  const auto result = solver.solve(total);
  const double optperf = job.true_batch_time(result.local_batches);

  // Even split.
  const std::vector<double> even(static_cast<std::size_t>(job.size()),
                                 static_cast<double>(total) / job.size());
  EXPECT_LE(optperf, job.true_batch_time(even) * (1 + 1e-9));

  // Speed-proportional split.
  double speed_sum = 0.0;
  for (int i = 0; i < job.size(); ++i) speed_sum += job.speed(i);
  std::vector<double> proportional;
  for (int i = 0; i < job.size(); ++i) {
    proportional.push_back(total * job.speed(i) / speed_sum);
  }
  EXPECT_LE(optperf, job.true_batch_time(proportional) * (1 + 1e-9));
}

TEST_P(WorkloadClusterSweep, AdaptiveRunProducesStructurallyValidPlans) {
  auto job = make_job();
  std::vector<double> caps;
  for (int i = 0; i < job.size(); ++i) caps.push_back(job.max_local_batch(i));
  experiments::CannikinSystem system(job.size(), caps, workload().b0,
                                     workload().max_total_batch);

  int last_total = 0;
  for (int epoch = 0; epoch < 12; ++epoch) {
    system.observe_gns(workload().gns_at(epoch / 12.0));
    const auto plan = system.plan_epoch();
    ASSERT_EQ(plan.local_batches.size(), static_cast<std::size_t>(job.size()));
    ASSERT_GE(plan.accumulation_steps, 1);
    int sum = 0;
    for (int i = 0; i < job.size(); ++i) {
      const int b = plan.local_batches[static_cast<std::size_t>(i)];
      EXPECT_GE(b, 0);
      EXPECT_LE(b, job.max_local_batch(i));
      sum += b;
    }
    // Micro-batch sum times the accumulation factor is the trained batch.
    EXPECT_EQ(sum * plan.accumulation_steps, plan.total_batch);
    EXPECT_GE(plan.total_batch, 2 * job.size());
    EXPECT_LE(plan.total_batch,
              std::max(workload().max_total_batch,
                       2 * job.size() * plan.accumulation_steps));
    last_total = plan.total_batch;
    system.observe_epoch(job.run_epoch(plan.local_batches, 8));
  }
  // GNS swept to its final value: the chosen batch should have grown
  // beyond the floor for every workload whose range allows it.
  if (workload().max_total_batch > 4 * workload().b0) {
    EXPECT_GT(last_total, std::max(workload().b0, 2 * job.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, WorkloadClusterSweep,
    ::testing::Combine(::testing::Values("imagenet", "cifar10", "librispeech",
                                         "squad", "movielens"),
                       ::testing::Values("a", "b", "bg", "c")));

// ------------------------------------------------------- comm stress

TEST(CommStress, InterleavedCollectivesOnDistinctTags) {
  // Two "bucket streams" of all-reduces interleaved per rank, plus a
  // scalar reduce, all in flight across 6 threads.
  const int n = 6;
  comm::ProcessGroup group(n);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int rank = 0; rank < n; ++rank) {
    threads.emplace_back([&, rank] {
      comm::Communicator comm = group.communicator(rank);
      for (int round = 0; round < 50; ++round) {
        std::vector<double> a(17, rank + round);
        std::vector<double> b(5, 2.0 * rank);
        comm::ring_all_reduce(comm, std::span<double>(a),
                              1000 + 2 * round);
        comm::ring_all_reduce(comm, std::span<double>(b),
                              5000 + 2 * round);
        const double expected_a = n * round + n * (n - 1) / 2.0;
        const double expected_b = 2.0 * (n * (n - 1) / 2.0);
        if (std::abs(a[0] - expected_a) > 1e-9 ||
            std::abs(b[4] - expected_b) > 1e-9) {
          ++failures;
        }
        const double total = comm::all_reduce_scalar(
            comm, 1.0, 9000 + static_cast<std::uint64_t>(round));
        if (std::abs(total - n) > 1e-9) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(TablePrinter, FormatsAndValidates) {
  std::ostringstream out;
  experiments::TablePrinter table({"a", "bb"}, out);
  table.add_row({"1", "2"});
  table.add_row({"333", "4"});
  table.print();
  const std::string text = out.str();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("333"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(experiments::TablePrinter({}), std::invalid_argument);
  EXPECT_EQ(experiments::TablePrinter::fmt(1.23456, 2), "1.23");

  std::ostringstream series;
  EXPECT_THROW(experiments::print_series("s", {1.0}, {}, series),
               std::invalid_argument);
  experiments::print_series("s", {1.0}, {2.0}, series);
  EXPECT_EQ(series.str(), "s: x=1 y=2\n");
}

}  // namespace
}  // namespace cannikin
