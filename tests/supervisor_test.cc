// TrainingSupervisor: the robustness acceptance surface. A node crash
// kills the training process; the supervisor restores from the latest
// checkpoint within its retry budget (measured, not modeled, restore
// cost), a later kNodeRecover grows the allocation back with a warm
// start (zero bootstrap epochs), and the run still converges. Plus the
// failure policies around that: bounded retries with exponential
// backoff, clean give-up, the legacy discard-epoch policy, and the
// recovery_metrics window clamp.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/scope.h"
#include "sched/fault_recovery.h"
#include "sched/supervisor.h"
#include "sim/cluster.h"
#include "sim/cluster_factory.h"
#include "sim/faults.h"
#include "workloads/registry.h"

namespace {

using namespace cannikin;
namespace fs = std::filesystem;

constexpr int kMaxEpochs = 400;

class TempDir {
 public:
  explicit TempDir(const std::string& stem) {
    path_ = fs::temp_directory_path() /
            (stem + "-" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

sched::TrainingSupervisor make_supervisor(const std::string& dir,
                                          sched::SupervisorOptions options =
                                              {}) {
  options.checkpoint_dir = dir;
  if (options.checkpoint_every_epochs == 5) options.checkpoint_every_epochs = 2;
  const auto& workload = workloads::by_name("cifar10");
  return sched::TrainingSupervisor(&workload, sim::cluster_b(),
                                   sim::NoiseConfig{}, /*seed=*/3,
                                   std::move(options));
}

// The end-to-end acceptance property: crash -> restore from latest
// checkpoint within the retry budget; node re-join -> allocation grows
// back warm (zero bootstrap epochs); training still reaches the target
// in a comparable number of epochs to the fault-free run.
TEST(Supervisor, CrashRestoreAndWarmRejoinEndToEnd) {
  // Fault-free baseline for the convergence comparison.
  const auto& workload = workloads::by_name("cifar10");
  sched::ElasticCannikinJob baseline(&workload, sim::cluster_b(),
                                     sim::NoiseConfig{}, 3);
  baseline.set_allocation({0, 4, 8, 9});
  const auto clean = sched::run_with_faults(baseline, sim::FaultInjector{},
                                            kMaxEpochs);
  ASSERT_TRUE(clean.reached_target);

  TempDir dir("cannikin-supervisor-e2e");
  sched::TrainingSupervisor supervisor = make_supervisor(dir.str());
  supervisor.start({0, 4, 8, 9});

  sim::FaultInjector faults;
  faults.schedule({/*epoch=*/7, sim::FaultKind::kNodeCrash, /*node=*/4});
  faults.schedule({/*epoch=*/12, sim::FaultKind::kNodeRecover, /*node=*/4,
                   /*severity=*/1.0});
  const auto trace = supervisor.run(faults, kMaxEpochs);

  // Crash: one restore, first attempt, from a real checkpoint file,
  // with measured (wall-clock) cost charged into the trace.
  EXPECT_EQ(trace.restores, 1);
  EXPECT_EQ(trace.restore_attempts, 1);
  EXPECT_FALSE(trace.gave_up);
  EXPECT_GT(trace.restore_seconds, 0.0);
  EXPECT_GT(trace.checkpoint_write_seconds, 0.0);
  EXPECT_GE(trace.checkpoints_written, 3);
  // Checkpoint cadence 2 with the crash one epoch past a checkpoint:
  // exactly that epoch is lost to rollback.
  EXPECT_EQ(trace.epochs_lost_to_rollback, 1);

  // Re-join: allocation grows back to all 4 nodes, warm-started from
  // the banked per-type models -- zero bootstrap epochs re-paid.
  EXPECT_EQ(trace.node_rejoins, 1);
  EXPECT_EQ(trace.warm_rejoins, 1);
  ASSERT_TRUE(supervisor.has_job());
  EXPECT_EQ(supervisor.job().allocation().size(), 4u);

  // Convergence: the faulted run still reaches the target, within a
  // modest epoch overhead over fault-free (it trained on 3 nodes for a
  // few epochs and re-ran one rolled-back epoch).
  EXPECT_TRUE(trace.reached_target);
  EXPECT_EQ(supervisor.stats().outcome,
            sched::SupervisorOutcome::kReachedTarget);
  const int clean_epochs = static_cast<int>(clean.rows.size());
  const int faulted_epochs = static_cast<int>(trace.rows.size());
  EXPECT_LE(faulted_epochs, clean_epochs + clean_epochs / 2 + 5);
}

TEST(Supervisor, RetriesWithBackoffThenSucceeds) {
  TempDir dir("cannikin-supervisor-retry");
  sched::SupervisorOptions options;
  options.max_restore_attempts = 3;
  options.backoff_initial_seconds = 0.5;
  options.backoff_multiplier = 2.0;
  sched::TrainingSupervisor supervisor = make_supervisor(dir.str(), options);
  supervisor.start({0, 4, 8, 9});
  // First replacement process fails to come up; the second succeeds.
  supervisor.set_restore_fault_hook([](int attempt) {
    if (attempt == 1) throw std::runtime_error("spawn failed");
  });

  sim::FaultInjector faults;
  faults.schedule({/*epoch=*/5, sim::FaultKind::kNodeCrash, /*node=*/4});
  const auto trace = supervisor.run(faults, kMaxEpochs);

  EXPECT_TRUE(trace.reached_target);
  EXPECT_FALSE(trace.gave_up);
  EXPECT_EQ(trace.restores, 1);
  EXPECT_EQ(trace.restore_attempts, 2);
  // One failed attempt => exactly one initial-backoff wait charged.
  EXPECT_DOUBLE_EQ(trace.backoff_seconds, 0.5);
}

TEST(Supervisor, GivesUpCleanlyAfterRetryBudget) {
  TempDir dir("cannikin-supervisor-giveup");
  sched::SupervisorOptions options;
  options.max_restore_attempts = 3;
  options.backoff_initial_seconds = 0.5;
  options.backoff_multiplier = 2.0;
  sched::TrainingSupervisor supervisor = make_supervisor(dir.str(), options);
  supervisor.start({0, 4, 8, 9});
  supervisor.set_restore_fault_hook(
      [](int) { throw std::runtime_error("cluster is on fire"); });

  sim::FaultInjector faults;
  faults.schedule({/*epoch=*/4, sim::FaultKind::kNodeCrash, /*node=*/4});
  const auto trace = supervisor.run(faults, kMaxEpochs);

  EXPECT_TRUE(trace.gave_up);
  EXPECT_FALSE(trace.reached_target);
  EXPECT_EQ(trace.restores, 0);
  EXPECT_EQ(trace.restore_attempts, 3);
  // Backoff between attempts 1-2 and 2-3: 0.5 + 1.0, none after the last.
  EXPECT_DOUBLE_EQ(trace.backoff_seconds, 1.5);
  EXPECT_FALSE(supervisor.has_job());
  EXPECT_EQ(supervisor.stats().outcome, sched::SupervisorOutcome::kGaveUp);
  EXPECT_NE(supervisor.stats().give_up_reason.find("cluster is on fire"),
            std::string::npos);
  // The aborted epoch is still recorded, with the crash event on it.
  ASSERT_FALSE(trace.rows.empty());
  EXPECT_NE(trace.rows.back().events.find("crash"), std::string::npos);
}

TEST(Supervisor, DiscardEpochPolicyRecoversInProcess) {
  TempDir dir("cannikin-supervisor-discard");
  sched::SupervisorOptions options;
  options.crash_policy = sched::CrashPolicy::kDiscardEpoch;
  sched::TrainingSupervisor supervisor = make_supervisor(dir.str(), options);
  supervisor.start({0, 4, 8, 9});

  sim::FaultInjector faults;
  faults.schedule({/*epoch=*/6, sim::FaultKind::kNodeCrash, /*node=*/4});
  const auto trace = supervisor.run(faults, kMaxEpochs);

  EXPECT_TRUE(trace.reached_target);
  // No restore happened: recovery was the in-process shrink.
  EXPECT_EQ(trace.restores, 0);
  EXPECT_EQ(trace.restore_attempts, 0);
  EXPECT_EQ(trace.epochs_lost_to_rollback, 0);
  EXPECT_EQ(trace.crash_recoveries, 1);
  EXPECT_EQ(supervisor.job().allocation().size(), 3u);
}

TEST(Supervisor, RetentionBoundsCheckpointFiles) {
  TempDir dir("cannikin-supervisor-retention");
  sched::SupervisorOptions options;
  options.keep_last = 2;
  options.checkpoint_every_epochs = 1;
  sched::TrainingSupervisor supervisor = make_supervisor(dir.str(), options);
  supervisor.start({0, 4, 8, 9});
  const auto trace = supervisor.run(sim::FaultInjector{}, kMaxEpochs);
  EXPECT_TRUE(trace.reached_target);
  EXPECT_GT(trace.checkpoints_written, 2);
  EXPECT_LE(supervisor.store().list().size(), 2u);
}

// Satellite: a kCheckpointCorrupt fault damages the newest checkpoint
// on disk; a crash in the same epoch forces a restore, which must
// CRC-skip the damaged file, fall back to the previous good one, and
// report the skip through sched.checkpoint.skipped_corrupt.
TEST(Supervisor, CorruptCheckpointIsSkippedAtRestore) {
  TempDir dir("cannikin-supervisor-corrupt");
  obs::MetricsRegistry metrics;
  sched::SupervisorOptions options;
  options.obs = obs::Scope(nullptr, &metrics);
  sched::TrainingSupervisor supervisor =
      make_supervisor(dir.str(), std::move(options));
  supervisor.start({0, 4, 8, 9});

  sim::FaultInjector faults;
  faults.schedule({/*epoch=*/9, sim::FaultKind::kCheckpointCorrupt, -1});
  faults.schedule({/*epoch=*/9, sim::FaultKind::kNodeCrash, /*node=*/4});
  const auto trace = supervisor.run(faults, kMaxEpochs);

  EXPECT_EQ(trace.checkpoint_corruptions, 1);
  EXPECT_EQ(trace.restores, 1);
  EXPECT_FALSE(trace.gave_up);
  EXPECT_TRUE(trace.reached_target);
  EXPECT_GE(metrics.counter("sched.checkpoint.skipped_corrupt"), 1.0);
  EXPECT_EQ(metrics.counter("sched.checkpoint.corrupted"), 1.0);
}

TEST(Supervisor, StartGuards) {
  TempDir dir("cannikin-supervisor-guards");
  sched::TrainingSupervisor supervisor = make_supervisor(dir.str());
  EXPECT_THROW(supervisor.run(sim::FaultInjector{}, 10), std::logic_error);
  EXPECT_THROW(supervisor.job(), std::logic_error);
  supervisor.start({0, 4});
  EXPECT_THROW(supervisor.start({0, 4}), std::logic_error);
}

// Satellite: a fault striking in the final `horizon` epochs used to
// derive its "steady state" from a near-empty window (often just the
// dip row itself) and report instant recovery. It must instead be
// clamped and reported unrecovered.
TEST(RecoveryMetrics, FaultNearTraceEndIsReportedUnrecovered) {
  sched::FaultRecoveryTrace trace;
  for (int e = 0; e < 10; ++e) {
    sched::FaultEpochRow row;
    row.epoch = e;
    row.num_nodes = 4;
    row.epoch_seconds = 1.0;
    row.throughput = 100.0;
    trace.rows.push_back(row);
  }
  // Dip at the fault epochs so recovery is non-trivial.
  trace.rows[2].throughput = 40.0;
  trace.rows[8].throughput = 40.0;

  sched::RecoveryReport mid;
  mid.epoch = 2;
  mid.event = {/*epoch=*/2, sim::FaultKind::kNodeCrash, /*node=*/1};
  trace.recoveries.push_back(mid);

  sched::RecoveryReport late;
  late.epoch = 8;  // only one post-fault row: no steady state to measure
  late.event = {/*epoch=*/8, sim::FaultKind::kNodeCrash, /*node=*/2};
  trace.recoveries.push_back(late);

  const auto metrics = sched::recovery_metrics(trace);
  ASSERT_EQ(metrics.size(), 2u);

  EXPECT_TRUE(metrics[0].recovered);
  EXPECT_EQ(metrics[0].epochs_to_recover, 1);

  EXPECT_FALSE(metrics[1].recovered);
  EXPECT_EQ(metrics[1].epochs_to_recover, -1);
}

}  // namespace
