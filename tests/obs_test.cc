// Tests for the observability layer: Chrome-trace JSON round-trips
// through the bundled parser, span discipline and timestamp ordering
// hold, histogram percentiles follow the nearest-rank definition,
// concurrent recording from many threads is race-free (tsan preset
// covers this suite), and a disabled Scope records nothing.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "comm/collectives.h"
#include "comm/process_group.h"
#include "comm/tag_allocator.h"
#include "dnn/adaptive_trainer.h"
#include "dnn/data.h"
#include "dnn/model.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/scope.h"
#include "obs/trace.h"

namespace cannikin::obs {
namespace {

// ----------------------------------------------------------------- trace

TEST(ObsTrace, ExportsValidChromeTraceJson) {
  Tracer tracer;
  tracer.set_thread_name(0, "rank 0");
  tracer.begin(0, "trainer", "epoch", ArgList().add("epoch", 3));
  tracer.instant(0, "controller", "batch_decision",
                 ArgList().add("total_batch", 64).add("note", "a\"b\nc"));
  tracer.end(0, "trainer");

  const json::Value doc = json::parse(tracer.to_json());
  ASSERT_TRUE(doc.is_object());
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Metadata + begin + instant + end.
  ASSERT_EQ(events->array.size(), 4u);
  for (const json::Value& event : events->array) {
    ASSERT_TRUE(event.is_object());
    ASSERT_NE(event.find("name"), nullptr);
    ASSERT_NE(event.find("ph"), nullptr);
    ASSERT_NE(event.find("pid"), nullptr);
    ASSERT_NE(event.find("tid"), nullptr);
  }
  // The escaped arg string round-trips through the parser.
  bool found_note = false;
  for (const json::Value& event : events->array) {
    const json::Value* args = event.find("args");
    if (args == nullptr) continue;
    if (const json::Value* note = args->find("note")) {
      EXPECT_EQ(note->string, "a\"b\nc");
      found_note = true;
    }
  }
  EXPECT_TRUE(found_note);
}

TEST(ObsTrace, SpansMatchBeginEndPerRow) {
  Tracer tracer;
  for (int tid = 0; tid < 3; ++tid) {
    tracer.begin(tid, "t", "outer");
    tracer.begin(tid, "t", "inner");
    tracer.end(tid, "t");
    tracer.end(tid, "t");
  }
  std::map<int, int> depth;
  for (const TraceEvent& event : tracer.snapshot()) {
    if (event.phase == Phase::kBegin) ++depth[event.tid];
    if (event.phase == Phase::kEnd) {
      --depth[event.tid];
      EXPECT_GE(depth[event.tid], 0) << "unmatched end on tid " << event.tid;
    }
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "tid " << tid;
}

TEST(ObsTrace, SnapshotTimestampsAreMonotonic) {
  Tracer tracer;
  for (int i = 0; i < 50; ++i) {
    tracer.begin(i % 4, "t", "span");
    tracer.end(i % 4, "t");
  }
  const auto events = tracer.snapshot();
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].timestamp_ns, events[i - 1].timestamp_ns);
  }
  EXPECT_GE(events.front().timestamp_ns, 0);
}

TEST(ObsTrace, ConcurrentRecordingFromManyThreads) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  Tracer tracer;
  MetricsRegistry metrics;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      const Scope scope(&tracer, &metrics, t);
      for (int i = 0; i < kSpansPerThread; ++i) {
        SpanGuard span = scope.span("t", "work", ArgList().add("i", i));
        scope.counter_add("work.items", 1.0);
        scope.observe("work.i", static_cast<double>(i));
        span.close();
      }
    });
  }
  go.store(true);
  // Snapshot concurrently with the writers: must be safe and sorted.
  for (int i = 0; i < 5; ++i) {
    const auto partial = tracer.snapshot();
    for (std::size_t j = 1; j < partial.size(); ++j) {
      EXPECT_GE(partial[j].timestamp_ns, partial[j - 1].timestamp_ns);
    }
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(tracer.event_count(),
            static_cast<std::size_t>(kThreads * kSpansPerThread * 2));
  EXPECT_DOUBLE_EQ(metrics.counter("work.items"), kThreads * kSpansPerThread);
  EXPECT_EQ(metrics.histogram("work.i").count,
            static_cast<std::size_t>(kThreads * kSpansPerThread));
}

// --------------------------------------------------------------- metrics

TEST(ObsMetrics, CountersAndGauges) {
  MetricsRegistry metrics;
  EXPECT_DOUBLE_EQ(metrics.counter("missing"), 0.0);
  metrics.counter_add("c", 2.0);
  metrics.counter_add("c", 3.0);
  EXPECT_DOUBLE_EQ(metrics.counter("c"), 5.0);
  metrics.gauge_set("g", 1.0);
  metrics.gauge_set("g", 7.5);
  EXPECT_DOUBLE_EQ(metrics.gauge("g"), 7.5);
}

TEST(ObsMetrics, HistogramNearestRankPercentiles) {
  MetricsRegistry metrics;
  for (int i = 1; i <= 100; ++i) {
    metrics.observe("h", static_cast<double>(i));
  }
  const auto summary = metrics.histogram("h");
  EXPECT_EQ(summary.count, 100u);
  EXPECT_DOUBLE_EQ(summary.min, 1.0);
  EXPECT_DOUBLE_EQ(summary.max, 100.0);
  EXPECT_DOUBLE_EQ(summary.mean, 50.5);
  EXPECT_DOUBLE_EQ(summary.p50, 50.0);
  EXPECT_DOUBLE_EQ(summary.p90, 90.0);
  EXPECT_DOUBLE_EQ(summary.p99, 99.0);
}

TEST(ObsMetrics, BenchJsonRoundTrips) {
  MetricsRegistry metrics;
  metrics.counter_add("ops", 3.0);
  metrics.gauge_set("speedup", 1.5);
  metrics.observe("latency_us", 10.0);
  metrics.observe("latency_us", 20.0);

  const json::Value doc = json::parse(metrics.to_bench_json("unit_test"));
  ASSERT_TRUE(doc.is_object());
  const json::Value* benchmarks = doc.find("benchmarks");
  ASSERT_NE(benchmarks, nullptr);
  ASSERT_EQ(benchmarks->array.size(), 3u);
  bool found_hist = false;
  for (const json::Value& entry : benchmarks->array) {
    const json::Value* name = entry.find("name");
    ASSERT_NE(name, nullptr);
    if (name->string == "latency_us") {
      found_hist = true;
      EXPECT_DOUBLE_EQ(entry.find("mean")->number, 15.0);
      EXPECT_DOUBLE_EQ(entry.find("count")->number, 2.0);
    }
  }
  EXPECT_TRUE(found_hist);
}

// ----------------------------------------------------------------- scope

TEST(ObsScope, DisabledScopeRecordsNothingAndIsSafe) {
  const Scope scope;  // no sinks
  EXPECT_FALSE(scope.enabled());
  EXPECT_FALSE(scope.tracing());
  // Every call must degrade to a no-op, not crash.
  {
    SpanGuard span = scope.span("t", "work");
    scope.instant("t", "event");
    scope.thread_name("rank 0");
    scope.counter_add("c", 1.0);
    scope.gauge_set("g", 1.0);
    scope.observe("h", 1.0);
  }
  const Scope derived = scope.for_rank(kCommTidBase + 3);
  EXPECT_FALSE(derived.enabled());
}

TEST(ObsScope, ForRankRebindsRowKeepingSinks) {
  Tracer tracer;
  MetricsRegistry metrics;
  const Scope scope(&tracer, &metrics, 0);
  const Scope comm_row = scope.for_rank(kCommTidBase + 2);
  EXPECT_TRUE(comm_row.tracing());
  EXPECT_EQ(comm_row.tid(), kCommTidBase + 2);
  comm_row.instant("t", "event");
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].tid, kCommTidBase + 2);
}

// ------------------------------------------------------------ integration

// One real AdaptiveTrainer epoch with the scope attached produces the
// artifact the README documents: per-bucket all-reduce spans on the
// comm rows, backward spans on the worker rows, and controller
// batch_decision events carrying the predicted batch time.
TEST(ObsIntegration, CommSpansMatchAcrossBackends) {
  // Running the same collective program on the thread backend and the
  // event backend must leave equivalent instrumentation: the same comm
  // span names on the same per-rank rows (tid = kCommTidBase + rank,
  // carrying the wire tag), and the same comm.* operation counts. The
  // event backend emits kComplete spans stamped with *virtual* time;
  // the thread backend emits kBegin/kEnd pairs in wall time.
  struct Observed {
    std::multiset<std::string> spans;  ///< "tid/name" per comm span
    double ops_completed = 0.0;
  };
  auto run = [](comm::BackendKind kind) {
    Tracer tracer;
    MetricsRegistry metrics;
    comm::GroupOptions options;
    options.size = 2;
    options.backend = kind;
    options.fabric = sim::FabricModel::uniform_latency(1e-4);
    comm::ProcessGroup group(options);
    group.set_scope(Scope(&tracer, &metrics, 0));
    std::vector<std::vector<double>> data(2, {1.0, 2.0, 3.0});
    std::vector<comm::WorkPtr> works;
    for (int rank = 0; rank < 2; ++rank) {
      works.push_back(comm::async_ring_all_reduce(
          group.communicator(rank), data[static_cast<std::size_t>(rank)],
          group.tags(rank).next(comm::CollectiveKind::kAllReduce)));
    }
    for (auto& work : works) work->wait();

    Observed observed;
    for (const TraceEvent& event : tracer.snapshot()) {
      const bool opens_span = event.phase == Phase::kBegin ||
                              event.phase == Phase::kComplete;
      if (opens_span && std::string(event.category) == "comm") {
        EXPECT_GE(event.tid, kCommTidBase);
        EXPECT_NE(event.args_json.find("tag"), std::string::npos);
        EXPECT_NE(event.args_json.find("queue_us"), std::string::npos);
        if (event.phase == Phase::kComplete) {
          // Virtual timestamps: the two-hop ring at 100us/hop ends at
          // 200us of virtual time, nowhere near wall time.
          EXPECT_LE(event.timestamp_ns + event.duration_ns, 200'000);
          EXPECT_GT(event.duration_ns, 0);
        }
        observed.spans.insert(std::to_string(event.tid) + "/" + event.name);
      }
    }
    observed.ops_completed = metrics.counter("comm.ops_completed");
    EXPECT_GT(metrics.histogram("comm.run_us").count, 0u);
    EXPECT_GT(metrics.histogram("comm.queue_us").count, 0u);
    return observed;
  };

  const Observed threaded = run(comm::BackendKind::kThread);
  const Observed event = run(comm::BackendKind::kEvent);
  EXPECT_EQ(threaded.spans, event.spans);
  EXPECT_EQ(threaded.ops_completed, event.ops_completed);
  EXPECT_EQ(event.spans.count(std::to_string(kCommTidBase) + "/all_reduce"),
            1u);
  EXPECT_EQ(
      event.spans.count(std::to_string(kCommTidBase + 1) + "/all_reduce"),
      1u);
}

TEST(ObsIntegration, AdaptiveEpochTraceCarriesCommAndControllerEvents) {
  const auto dataset = dnn::make_gaussian_mixture(240, 10, 3, 3.5, 11);
  dnn::AdaptiveTrainerOptions options;
  options.num_nodes = 2;
  options.initial_total_batch = 48;
  options.max_total_batch = 96;
  options.bucket_capacity = 64;  // several buckets -> several spans
  options.seed = 5;

  Tracer tracer;
  MetricsRegistry metrics;
  options.obs = Scope(&tracer, &metrics, 0);

  dnn::AdaptiveTrainer trainer(
      &dataset, [] { return dnn::make_mlp(10, 16, 1, 3); }, options);
  trainer.run_epoch();

  int bucket_spans = 0, backward_spans = 0, decisions = 0;
  bool decision_has_prediction = false;
  for (const TraceEvent& event : tracer.snapshot()) {
    if (event.phase == Phase::kBegin && event.name == "bucket_all_reduce") {
      EXPECT_GE(event.tid, kCommTidBase);
      ++bucket_spans;
    }
    if (event.phase == Phase::kBegin && event.name == "backward") {
      EXPECT_LT(event.tid, options.num_nodes);
      ++backward_spans;
    }
    if (event.phase == Phase::kInstant && event.name == "batch_decision") {
      EXPECT_EQ(event.tid, kControllerTid);
      ++decisions;
      decision_has_prediction =
          decision_has_prediction ||
          event.args_json.find("predicted_batch_time") != std::string::npos;
    }
  }
  EXPECT_GT(bucket_spans, 0);
  EXPECT_GT(backward_spans, 0);
  EXPECT_EQ(decisions, 1);
  EXPECT_TRUE(decision_has_prediction);

  EXPECT_GE(metrics.counter("controller.plans"), 1.0);
  EXPECT_GT(metrics.counter("reducer.buckets_reduced"), 0.0);
  EXPECT_GT(metrics.histogram("adaptive.epoch_seconds").count, 0u);
  EXPECT_GT(metrics.histogram("comm.run_us").count, 0u);

  // The whole trace must still be valid JSON.
  const json::Value doc = json::parse(tracer.to_json());
  EXPECT_TRUE(doc.find("traceEvents")->is_array());
}

}  // namespace
}  // namespace cannikin::obs
