// Property-based conformance suite for the compute-kernel layer.
//
// The optimized backend's contract (DESIGN.md "Compute kernels") is
// checked here, not assumed: a randomized sweep of well over 200
// shapes -- odd and non-blocked sizes, batch 1, degenerate dims --
// asserts that every optimized kernel agrees with the retained naive
// reference BITWISE on the deterministic single-thread path, and
// within <= 2 ulp (in practice also bitwise) on the threaded path,
// which must additionally be stable across pool sizes.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "dnn/kernels/arena.h"
#include "dnn/kernels/kernels.h"
#include "dnn/kernels/thread_pool.h"

namespace cannikin::dnn::kernels {
namespace {

// Dimensions chosen to straddle the blocking scheme (kRowBlock = 8,
// kKBlock = 16): below, at, just past, and far past block boundaries,
// plus 1 for batch-1 / degenerate axes.
const std::size_t kDims[] = {1,  2,  3,  4,  5,  7,  8,  9, 13,
                             16, 17, 31, 32, 33, 48, 64, 100};

std::size_t random_dim(Rng& rng) {
  return kDims[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(std::size(kDims)) - 1))];
}

// ~20% exact zeros so the reference's `v == 0.0` skip branches (and
// their replication in the optimized kernels) are exercised.
std::vector<double> random_values(std::size_t n, Rng& rng) {
  std::vector<double> values(n);
  for (double& v : values) {
    v = rng.bernoulli(0.2) ? 0.0 : rng.normal();
  }
  return values;
}

std::int64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return INT64_MAX;
  std::int64_t ia, ib;
  std::memcpy(&ia, &a, sizeof(a));
  std::memcpy(&ib, &b, sizeof(b));
  // Map the sign-magnitude bit pattern onto a monotone integer line.
  if (ia < 0) ia = INT64_MIN - ia;
  if (ib < 0) ib = INT64_MIN - ib;
  const std::int64_t d = ia - ib;
  return d < 0 ? -d : d;
}

void expect_bitwise(const std::vector<double>& got,
                    const std::vector<double>& want, const char* what,
                    std::size_t m, std::size_t k, std::size_t n) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::memcmp(&got[i], &want[i], sizeof(double)) != 0) {
      ADD_FAILURE() << what << " diverges at element " << i << " for shape m="
                    << m << " k=" << k << " n=" << n << ": got " << got[i]
                    << " want " << want[i] << " (ulp "
                    << ulp_distance(got[i], want[i]) << ")";
      return;
    }
  }
}

const KernelBackend& naive() { return kernel(KernelKind::kNaive); }
const KernelBackend& optimized() { return kernel(KernelKind::kOptimized); }

// ------------------------------------------------ deterministic path

// 80 randomized shapes per GEMM-family op (240 total, over the 200
// the conformance contract requires) -- serial path must be bitwise.
constexpr int kShapesPerOp = 80;

TEST(KernelParity, MatmulNnBitwiseOnSerialPath) {
  Rng rng(101);
  for (int iter = 0; iter < kShapesPerOp; ++iter) {
    const std::size_t m = random_dim(rng), k = random_dim(rng),
                      n = random_dim(rng);
    const auto a = random_values(m * k, rng);
    const auto b = random_values(k * n, rng);
    std::vector<double> c_ref(m * n, -7.0);  // overwritten by contract
    std::vector<double> c_opt(m * n, 3.0);
    naive().matmul_nn(a.data(), b.data(), c_ref.data(), m, k, n, nullptr);
    optimized().matmul_nn(a.data(), b.data(), c_opt.data(), m, k, n, nullptr);
    expect_bitwise(c_opt, c_ref, "matmul_nn", m, k, n);
  }
}

TEST(KernelParity, LinearBitwiseOnSerialPath) {
  Rng rng(202);
  Arena arena;
  for (int iter = 0; iter < kShapesPerOp; ++iter) {
    arena.reset();
    const std::size_t m = random_dim(rng), k = random_dim(rng),
                      n = random_dim(rng);
    const auto a = random_values(m * k, rng);
    const auto w = random_values(n * k, rng);  // (n, k): transposed layout
    const auto bias = random_values(n, rng);
    const bool with_bias = iter % 2 == 0;
    const Activation act = static_cast<Activation>(iter % 3);
    std::vector<double> c_ref(m * n, 0.0);
    std::vector<double> c_opt(m * n, 0.0);
    naive().linear(a.data(), w.data(), with_bias ? bias.data() : nullptr,
                   c_ref.data(), m, k, n, act, nullptr,
                   std::pmr::get_default_resource());
    // The optimized path also gets an arena scratch, like the trainer.
    optimized().linear(a.data(), w.data(), with_bias ? bias.data() : nullptr,
                       c_opt.data(), m, k, n, act, nullptr, arena.resource());
    expect_bitwise(c_opt, c_ref, "linear", m, k, n);
  }
}

TEST(KernelParity, MatmulTnAccBitwiseOnSerialPath) {
  Rng rng(303);
  for (int iter = 0; iter < kShapesPerOp; ++iter) {
    const std::size_t m = random_dim(rng), k = random_dim(rng),
                      n = random_dim(rng);
    const auto a = random_values(k * m, rng);  // (k, m): read transposed
    const auto b = random_values(k * n, rng);
    // Accumulating op: both backends start from the same nonzero C.
    const auto seed_c = random_values(m * n, rng);
    std::vector<double> c_ref = seed_c;
    std::vector<double> c_opt = seed_c;
    naive().matmul_tn_acc(a.data(), b.data(), c_ref.data(), m, k, n, nullptr);
    optimized().matmul_tn_acc(a.data(), b.data(), c_opt.data(), m, k, n,
                              nullptr);
    expect_bitwise(c_opt, c_ref, "matmul_tn_acc", m, k, n);
  }
}

TEST(KernelParity, ColSumAccBitwiseOnSerialPath) {
  Rng rng(404);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t m = random_dim(rng), n = random_dim(rng);
    const auto a = random_values(m * n, rng);
    const auto seed_out = random_values(n, rng);
    std::vector<double> out_ref = seed_out;
    std::vector<double> out_opt = seed_out;
    naive().col_sum_acc(a.data(), out_ref.data(), m, n, nullptr);
    optimized().col_sum_acc(a.data(), out_opt.data(), m, n, nullptr);
    expect_bitwise(out_opt, out_ref, "col_sum_acc", m, 0, n);
  }
}

TEST(KernelParity, FusedLinearMatchesComposedReference) {
  // act(A W^T + b) fused must equal the unfused pipeline (plain linear
  // followed by standalone activation) bitwise -- fusing an epilogue
  // must never change numbers.
  Rng rng(505);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t m = random_dim(rng), k = random_dim(rng),
                      n = random_dim(rng);
    const auto a = random_values(m * k, rng);
    const auto w = random_values(n * k, rng);
    const auto bias = random_values(n, rng);
    for (Activation act : {Activation::kReLU, Activation::kTanh}) {
      std::vector<double> fused(m * n, 0.0);
      std::vector<double> composed(m * n, 0.0);
      optimized().linear(a.data(), w.data(), bias.data(), fused.data(), m, k,
                         n, act, nullptr, std::pmr::get_default_resource());
      naive().linear(a.data(), w.data(), bias.data(), composed.data(), m, k,
                     n, Activation::kNone, nullptr,
                     std::pmr::get_default_resource());
      naive().activation_forward(act, composed.data(), composed.data(), m * n,
                                 nullptr);
      expect_bitwise(fused, composed, "fused linear", m, k, n);
    }
  }
}

TEST(KernelParity, ActivationForwardBackwardBitwise) {
  Rng rng(606);
  for (std::size_t count : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                            std::size_t{1023}, std::size_t{4096}}) {
    const auto x = random_values(count, rng);
    const auto dy = random_values(count, rng);
    for (Activation act :
         {Activation::kNone, Activation::kReLU, Activation::kTanh}) {
      std::vector<double> y_ref(count), y_opt(count);
      naive().activation_forward(act, x.data(), y_ref.data(), count, nullptr);
      optimized().activation_forward(act, x.data(), y_opt.data(), count,
                                     nullptr);
      expect_bitwise(y_opt, y_ref, "activation_forward", count, 0, 0);

      std::vector<double> dx_ref(count), dx_opt(count);
      naive().activation_backward(act, y_ref.data(), dy.data(), dx_ref.data(),
                                  count, nullptr);
      optimized().activation_backward(act, y_opt.data(), dy.data(),
                                      dx_opt.data(), count, nullptr);
      expect_bitwise(dx_opt, dx_ref, "activation_backward", count, 0, 0);
    }
  }
}

TEST(KernelParity, OptimizerStepsBitwise) {
  Rng rng(707);
  for (std::size_t count : {std::size_t{1}, std::size_t{33}, std::size_t{257},
                            std::size_t{2048}}) {
    const auto grads = random_values(count, rng);
    const auto params0 = random_values(count, rng);
    {
      std::vector<double> p_ref = params0, p_opt = params0;
      std::vector<double> v_ref(count, 0.0), v_opt(count, 0.0);
      for (int step = 0; step < 3; ++step) {
        naive().sgd_step(p_ref.data(), grads.data(), v_ref.data(), count,
                         0.05, 0.9, 1e-4, nullptr);
        optimized().sgd_step(p_opt.data(), grads.data(), v_opt.data(), count,
                             0.05, 0.9, 1e-4, nullptr);
      }
      expect_bitwise(p_opt, p_ref, "sgd_step params", count, 0, 0);
      expect_bitwise(v_opt, v_ref, "sgd_step velocity", count, 0, 0);
    }
    for (bool decoupled : {false, true}) {
      std::vector<double> p_ref = params0, p_opt = params0;
      std::vector<double> m_ref(count, 0.0), m_opt(count, 0.0);
      std::vector<double> v_ref(count, 0.0), v_opt(count, 0.0);
      for (int step = 1; step <= 3; ++step) {
        const double bc1 = 1.0 - std::pow(0.9, step);
        const double bc2 = 1.0 - std::pow(0.999, step);
        naive().adam_step(p_ref.data(), grads.data(), m_ref.data(),
                          v_ref.data(), count, 0.001, 0.9, 0.999, bc1, bc2,
                          1e-8, 0.01, decoupled, nullptr);
        optimized().adam_step(p_opt.data(), grads.data(), m_opt.data(),
                              v_opt.data(), count, 0.001, 0.9, 0.999, bc1,
                              bc2, 1e-8, 0.01, decoupled, nullptr);
      }
      expect_bitwise(p_opt, p_ref, "adam_step params", count, 0, 0);
      expect_bitwise(m_opt, m_ref, "adam_step m", count, 0, 0);
      expect_bitwise(v_opt, v_ref, "adam_step v", count, 0, 0);
    }
  }
}

// --------------------------------------------------- threaded path

// The threaded contract promises <= 2 ulp; the built-in kernels'
// static disjoint partition actually delivers bitwise equality and
// stability across pool sizes, which is asserted (a regression to
// "merely within tolerance" on these kernels would be a bug).
TEST(KernelParity, ThreadedMatchesSerialAcrossPoolSizes) {
  Rng rng(808);
  ThreadPool pool2(2);
  ThreadPool pool4(4);
  for (int iter = 0; iter < 25; ++iter) {
    const std::size_t m = random_dim(rng), k = random_dim(rng),
                      n = random_dim(rng);
    const auto a = random_values(m * k, rng);
    const auto b = random_values(k * n, rng);
    const auto w = random_values(n * k, rng);
    const auto bias = random_values(n, rng);

    std::vector<double> serial(m * n, 0.0);
    optimized().matmul_nn(a.data(), b.data(), serial.data(), m, k, n,
                          nullptr);
    for (ThreadPool* pool : {&pool2, &pool4}) {
      std::vector<double> threaded(m * n, 0.0);
      optimized().matmul_nn(a.data(), b.data(), threaded.data(), m, k, n,
                            pool);
      for (std::size_t i = 0; i < threaded.size(); ++i) {
        ASSERT_LE(ulp_distance(threaded[i], serial[i]), 2)
            << "matmul_nn threads=" << pool->size() << " m=" << m << " k="
            << k << " n=" << n << " i=" << i;
      }
      expect_bitwise(threaded, serial, "threaded matmul_nn", m, k, n);
    }

    std::vector<double> lin_serial(m * n, 0.0);
    optimized().linear(a.data(), w.data(), bias.data(), lin_serial.data(), m,
                       k, n, Activation::kReLU, nullptr,
                       std::pmr::get_default_resource());
    for (ThreadPool* pool : {&pool2, &pool4}) {
      std::vector<double> lin_threaded(m * n, 0.0);
      optimized().linear(a.data(), w.data(), bias.data(), lin_threaded.data(),
                         m, k, n, Activation::kReLU, pool,
                         std::pmr::get_default_resource());
      for (std::size_t i = 0; i < lin_threaded.size(); ++i) {
        ASSERT_LE(ulp_distance(lin_threaded[i], lin_serial[i]), 2)
            << "linear threads=" << pool->size();
      }
      expect_bitwise(lin_threaded, lin_serial, "threaded linear", m, k, n);
    }

    const auto at = random_values(k * m, rng);
    const auto seed_c = random_values(m * n, rng);
    std::vector<double> acc_serial = seed_c;
    optimized().matmul_tn_acc(at.data(), b.data(), acc_serial.data(), m, k, n,
                              nullptr);
    for (ThreadPool* pool : {&pool2, &pool4}) {
      std::vector<double> acc_threaded = seed_c;
      optimized().matmul_tn_acc(at.data(), b.data(), acc_threaded.data(), m,
                                k, n, pool);
      expect_bitwise(acc_threaded, acc_serial, "threaded matmul_tn_acc", m, k,
                     n);
    }
  }
}

TEST(KernelParity, ThreadPoolCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  Rng rng(909);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n =
        static_cast<std::size_t>(rng.uniform_int(0, 5000));
    const std::size_t grain =
        static_cast<std::size_t>(rng.uniform_int(0, 64));
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
      ASSERT_LE(begin, end);
      ASSERT_LE(end, n);
      for (std::size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " n=" << n << " grain="
                                   << grain;
    }
  }
}

// ------------------------------------------------------- allocation

TEST(KernelParity, ArenaSteadyStateStopsHittingTheHeap) {
  Arena arena(1024);  // deliberately small: must warm up by growing
  const auto cycle = [&arena] {
    std::pmr::vector<double> a(512, 0.0, arena.resource());
    std::pmr::vector<double> b(2048, 1.0, arena.resource());
    std::pmr::vector<std::byte> c(4096, std::byte{0}, arena.resource());
    a[0] = b[1] = 2.0;
  };
  for (int warmup = 0; warmup < 4; ++warmup) {
    arena.reset();
    cycle();
  }
  arena.reset();
  const std::size_t settled = arena.upstream_allocations();
  for (int step = 0; step < 100; ++step) {
    arena.reset();
    cycle();
  }
  // After warmup the owned buffer covers the cycle: zero further heap
  // allocations over 100 steady-state steps.
  EXPECT_EQ(arena.upstream_allocations(), settled);
  EXPECT_GE(arena.peak_bytes(), (512 + 2048) * sizeof(double) + 4096);
}

TEST(KernelParity, ArenaResetRecyclesWithoutGrowth) {
  Arena arena(1 << 20);
  for (int step = 0; step < 50; ++step) {
    arena.reset();
    std::pmr::vector<double> v(1000, 0.5, arena.resource());
    EXPECT_GE(arena.cycle_bytes(), 1000 * sizeof(double));
  }
  EXPECT_EQ(arena.upstream_allocations(), 0u);
}

TEST(KernelParity, ContextDefaultsToNaiveSerialHeap) {
  const Context& ctx = default_context();
  EXPECT_STREQ(ctx.k().name(), "naive");
  EXPECT_TRUE(ctx.deterministic());
  EXPECT_EQ(ctx.resource(), std::pmr::get_default_resource());
  EXPECT_STREQ(kernel(KernelKind::kOptimized).name(), "optimized");
  EXPECT_STREQ(kernel_kind_name(KernelKind::kNaive), "naive");
  EXPECT_STREQ(kernel_kind_name(KernelKind::kOptimized), "optimized");
}

}  // namespace
}  // namespace cannikin::dnn::kernels
