// Tests for dynamic-resource handling: runtime contention changes in
// the simulator and drift detection in the performance-model learner
// ("sudden changes of resources", Section 1).
#include <gtest/gtest.h>

#include "core/optperf.h"
#include "core/perf_model.h"
#include "experiments/cannikin_system.h"
#include "sim/cluster_factory.h"
#include "workloads/registry.h"

namespace cannikin {
namespace {

TEST(SetContention, RescalesGroundTruth) {
  sim::ClusterJob job(sim::cluster_a(), workloads::by_name("cifar10").profile,
                      sim::NoiseConfig::none(), 1);
  const double q_before = job.truth(0).q;
  const double s_before = job.truth(0).s;
  job.set_contention(0, 0.5);
  EXPECT_NEAR(job.truth(0).q, 2.0 * q_before, 1e-12);
  EXPECT_NEAR(job.truth(0).s, 2.0 * s_before, 1e-12);
  EXPECT_THROW(job.set_contention(0, 0.0), std::invalid_argument);
}

TEST(DriftDetection, ResetsAfterTwoConsecutiveMispredictions) {
  core::NodePerfLearner learner;
  // Identify a clean model.
  for (int b : {10, 20, 30}) {
    learner.observe(b, 0.001 * b + 0.01, 0.002 * b + 0.005);
  }
  EXPECT_EQ(learner.drift_resets(), 0);

  // Hardware slows down 2x: observations now 2x the prediction.
  learner.observe(20, 2 * (0.001 * 20 + 0.01), 2 * (0.002 * 20 + 0.005));
  EXPECT_EQ(learner.drift_resets(), 0);  // first strike
  learner.observe(30, 2 * (0.001 * 30 + 0.01), 2 * (0.002 * 30 + 0.005));
  EXPECT_EQ(learner.drift_resets(), 1);  // reset fired
  // History restarted from the two quarantined new-regime points, so
  // the learner is already re-identified.
  EXPECT_EQ(learner.num_distinct_batches(), 2u);

  const auto model = learner.fit();
  ASSERT_TRUE(model.has_value());
  EXPECT_NEAR(model->q, 0.002, 1e-9);
}

TEST(DriftDetection, SingleOutlierDoesNotReset) {
  core::NodePerfLearner learner;
  for (int b : {10, 20, 30}) {
    learner.observe(b, 0.001 * b + 0.01, 0.002 * b + 0.005);
  }
  // One bad epoch, then clean again: no reset.
  learner.observe(20, 5.0, 5.0);
  learner.observe(20, 0.001 * 20 + 0.01, 0.002 * 20 + 0.005);
  learner.observe(30, 5.0, 5.0);
  EXPECT_EQ(learner.drift_resets(), 0);
}

TEST(DriftDetection, CanBeDisabled) {
  core::NodePerfLearner learner;
  learner.set_drift_threshold(0.0);
  for (int b : {10, 20}) {
    learner.observe(b, 0.001 * b + 0.01, 0.002 * b + 0.005);
  }
  for (int i = 0; i < 5; ++i) learner.observe(20, 9.0, 9.0);
  EXPECT_EQ(learner.drift_resets(), 0);
}

TEST(DriftDetection, CannikinReadaptsAfterContentionChange) {
  // A node suddenly loses half its GPU mid-training (a co-located
  // tenant arrives). With drift detection, Cannikin discards the stale
  // model, re-learns, and returns close to the new optimum.
  const auto& workload = workloads::by_name("imagenet");
  sim::ClusterJob job(sim::cluster_a(), workload.profile, sim::NoiseConfig{},
                      4);
  std::vector<double> caps;
  for (int i = 0; i < job.size(); ++i) caps.push_back(job.max_local_batch(i));
  experiments::CannikinSystem system(job.size(), caps, 128, 128,
                                     /*adaptive=*/false);

  auto epoch = [&] {
    const auto plan = system.plan_epoch();
    const auto obs = job.run_epoch(plan.local_batches, 128);
    system.observe_epoch(obs);
    return obs.avg_batch_time;
  };

  for (int e = 0; e < 5; ++e) epoch();

  job.set_contention(0, 0.45);  // the fast a5000 loses over half its GPU

  // New ground-truth optimum after the change.
  std::vector<core::NodeModel> models;
  for (int i = 0; i < job.size(); ++i) {
    const auto& t = job.truth(i);
    models.push_back(
        {t.q, t.s, t.k, t.m, static_cast<double>(t.max_local_batch)});
  }
  core::OptPerfSolver solver(models, {job.gamma(), job.comm().t_other,
                                      job.comm().t_last});
  const double new_optperf = solver.solve(128).batch_time;

  double last = 0.0;
  for (int e = 0; e < 12; ++e) last = epoch();

  EXPECT_GT(system.controller().perf_model().drift_resets(), 0);
  EXPECT_LT(last, 1.10 * new_optperf);
}

TEST(DriftDetection, CannikinRecoversAfterTransientContention) {
  // Transient straggler: contention spikes mid-training and later
  // clears. Cannikin must re-learn twice -- once at onset, once at
  // recovery -- and end up back near the *original* optimum.
  const auto& workload = workloads::by_name("imagenet");
  sim::ClusterJob job(sim::cluster_a(), workload.profile, sim::NoiseConfig{},
                      4);
  std::vector<double> caps;
  for (int i = 0; i < job.size(); ++i) caps.push_back(job.max_local_batch(i));
  experiments::CannikinSystem system(job.size(), caps, 128, 128,
                                     /*adaptive=*/false);

  auto epoch = [&] {
    const auto plan = system.plan_epoch();
    const auto obs = job.run_epoch(plan.local_batches, 128);
    system.observe_epoch(obs);
    return obs.avg_batch_time;
  };

  // Healthy ground-truth optimum: the target to return to.
  std::vector<core::NodeModel> models;
  for (int i = 0; i < job.size(); ++i) {
    const auto& t = job.truth(i);
    models.push_back(
        {t.q, t.s, t.k, t.m, static_cast<double>(t.max_local_batch)});
  }
  core::OptPerfSolver solver(models, {job.gamma(), job.comm().t_other,
                                      job.comm().t_last});
  const double healthy_optperf = solver.solve(128).batch_time;

  for (int e = 0; e < 5; ++e) epoch();

  job.set_contention(0, 0.45);  // a co-located tenant arrives...
  for (int e = 0; e < 8; ++e) epoch();
  const int resets_during_fault =
      system.controller().perf_model().drift_resets();
  EXPECT_GT(resets_during_fault, 0);

  job.set_contention(0, 1.0);  // ...and leaves again
  double last = 0.0;
  for (int e = 0; e < 10; ++e) last = epoch();

  // Recovery is a second regime change: drift fires again and the plan
  // converges back towards the healthy optimum.
  EXPECT_GT(system.controller().perf_model().drift_resets(),
            resets_during_fault);
  EXPECT_LT(last, 1.10 * healthy_optperf);
}

}  // namespace
}  // namespace cannikin
